// SQL-semantics property sweeps over the engine: three-valued logic truth
// tables, LIKE matcher algebra, arithmetic laws on exact decimals, UNION
// type-unification properties, and GROUP BY partition invariants.
#include <gtest/gtest.h>

#include "src/engine/database.h"

namespace soft {
namespace {

std::string Eval(Database& db, const std::string& expr) {
  const StatementResult r = db.Execute("SELECT " + expr);
  if (!r.ok()) {
    return "<" + std::string(StatusCodeName(r.status.code())) + ">";
  }
  return r.rows[0][0].ToDisplayString();
}

TEST(ThreeValuedLogic, FullTruthTables) {
  Database db;
  const char* kVals[] = {"TRUE", "FALSE", "NULL"};
  // Kleene K3 tables.
  const char* kAnd[3][3] = {{"TRUE", "FALSE", "NULL"},
                            {"FALSE", "FALSE", "FALSE"},
                            {"NULL", "FALSE", "NULL"}};
  const char* kOr[3][3] = {{"TRUE", "TRUE", "TRUE"},
                           {"TRUE", "FALSE", "NULL"},
                           {"TRUE", "NULL", "NULL"}};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(Eval(db, std::string(kVals[i]) + " AND " + kVals[j]), kAnd[i][j])
          << kVals[i] << " AND " << kVals[j];
      EXPECT_EQ(Eval(db, std::string(kVals[i]) + " OR " + kVals[j]), kOr[i][j])
          << kVals[i] << " OR " << kVals[j];
    }
  }
  EXPECT_EQ(Eval(db, "NOT TRUE"), "FALSE");
  EXPECT_EQ(Eval(db, "NOT FALSE"), "TRUE");
  EXPECT_EQ(Eval(db, "NOT NULL"), "NULL");
}

TEST(LikeMatcher, Algebra) {
  Database db;
  // (text, pattern, expected)
  const std::tuple<const char*, const char*, const char*> kCases[] = {
      {"abc", "abc", "TRUE"},    {"abc", "a%", "TRUE"},   {"abc", "%c", "TRUE"},
      {"abc", "%b%", "TRUE"},    {"abc", "a_c", "TRUE"},  {"abc", "a_b", "FALSE"},
      {"abc", "%", "TRUE"},      {"", "%", "TRUE"},       {"", "_", "FALSE"},
      {"abc", "", "FALSE"},      {"aaa", "a%a", "TRUE"},  {"ab", "%%%", "TRUE"},
  };
  for (const auto& [text, pattern, expected] : kCases) {
    EXPECT_EQ(Eval(db, std::string("'") + text + "' LIKE '" + pattern + "'"), expected)
        << text << " LIKE " << pattern;
  }
  EXPECT_EQ(Eval(db, "NULL LIKE '%'"), "NULL");
  EXPECT_EQ(Eval(db, "'a' LIKE NULL"), "NULL");
}

class DecimalLawTest : public testing::TestWithParam<std::pair<const char*, const char*>> {
};

TEST_P(DecimalLawTest, FieldLawsHoldExactly) {
  Database db;
  const auto& [a, b] = GetParam();
  const std::string sa(a);
  const std::string sb(b);
  // Commutativity.
  EXPECT_EQ(Eval(db, sa + " + " + sb), Eval(db, sb + " + " + sa));
  EXPECT_EQ(Eval(db, sa + " * " + sb), Eval(db, sb + " * " + sa));
  // a - b + b == a (as comparison, to avoid scale-normalization artefacts).
  EXPECT_EQ(Eval(db, "(" + sa + " - " + sb + ") + " + sb + " = " + sa), "TRUE");
  // Distributivity as a comparison.
  EXPECT_EQ(Eval(db, sa + " * (" + sb + " + 1) = " + sa + " * " + sb + " + " + sa),
            "TRUE");
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, DecimalLawTest,
    testing::Values(std::make_pair("1.5", "2.25"),
                    std::make_pair("-0.999999999999999999999999", "0.000001"),
                    std::make_pair("99999999999999999999", "1"),
                    std::make_pair("123456789.123456789", "-987654321.987654321"),
                    std::make_pair("0", "0.00001")));

TEST(UnionTypeLattice, UnifiedColumnsHaveOneKind) {
  Database db;
  const std::pair<const char*, TypeKind> kCases[] = {
      {"SELECT 1 UNION ALL SELECT 2.5", TypeKind::kDecimal},
      {"SELECT 1 UNION ALL SELECT 2.5e0", TypeKind::kDouble},
      {"SELECT 1 UNION ALL SELECT 'x'", TypeKind::kString},
      {"SELECT DATE '2024-01-01' UNION ALL SELECT TIMESTAMP '2024-01-01 01:00:00'",
       TypeKind::kDateTime},
      {"SELECT NULL UNION ALL SELECT 7", TypeKind::kInt},
  };
  for (const auto& [sql, kind] : kCases) {
    const StatementResult r = db.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << ": " << r.status.ToString();
    for (const ValueList& row : r.rows) {
      if (!row[0].is_null()) {
        EXPECT_EQ(row[0].kind(), kind) << sql;
      }
    }
  }
  // Incompatible branches are a type error, not a crash.
  const StatementResult bad = db.Execute("SELECT ROW(1,1) UNION SELECT 1");
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(bad.crashed());
}

TEST(GroupByInvariant, GroupSizesSumToRowCount) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (g INT, v INT)").ok());
  std::string insert = "INSERT INTO t VALUES ";
  for (int i = 0; i < 60; ++i) {
    insert += "(" + std::to_string(i % 7) + ", " + std::to_string(i) + ")";
    insert += (i + 1 < 60) ? ", " : "";
  }
  ASSERT_TRUE(db.Execute(insert).ok());

  const StatementResult grouped = db.Execute("SELECT g, COUNT(*) FROM t GROUP BY g");
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped.rows.size(), 7u);
  int64_t total = 0;
  for (const ValueList& row : grouped.rows) {
    total += row[1].int_value();
  }
  EXPECT_EQ(total, 60);

  // SUM over groups equals the global SUM (SUM yields exact decimals).
  const StatementResult global = db.Execute("SELECT SUM(v) FROM t");
  const StatementResult per_group = db.Execute("SELECT SUM(v) FROM t GROUP BY g");
  int64_t group_total = 0;
  for (const ValueList& row : per_group.rows) {
    group_total += *row[0].AsInt64();
  }
  EXPECT_EQ(group_total, *global.rows[0][0].AsInt64());
}

TEST(OrderByInvariant, OutputIsSortedAndAPermutation) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (v INT)").ok());
  ASSERT_TRUE(
      db.Execute("INSERT INTO t VALUES (5), (3), (9), (1), (3), (7), (0)").ok());
  const StatementResult asc = db.Execute("SELECT v FROM t ORDER BY v");
  const StatementResult desc = db.Execute("SELECT v FROM t ORDER BY v DESC");
  ASSERT_TRUE(asc.ok());
  ASSERT_TRUE(desc.ok());
  ASSERT_EQ(asc.rows.size(), 7u);
  for (size_t i = 1; i < asc.rows.size(); ++i) {
    EXPECT_LE(asc.rows[i - 1][0].int_value(), asc.rows[i][0].int_value());
    EXPECT_GE(desc.rows[i - 1][0].int_value(), desc.rows[i][0].int_value());
  }
  // DESC is the reverse of ASC (stable engine, unique-ish values).
  for (size_t i = 0; i < asc.rows.size(); ++i) {
    EXPECT_EQ(asc.rows[i][0].int_value(),
              desc.rows[desc.rows.size() - 1 - i][0].int_value());
  }
}

TEST(CastIdempotence, CastingTwiceEqualsOnce) {
  Database db;
  const std::pair<const char*, const char*> kCases[] = {
      {"'42'", "INT"},     {"1.5", "STRING"},      {"'1.2.3.4'", "INET"},
      {"'[1]'", "JSON"},   {"'POINT(1 2)'", "GEOMETRY"}, {"'2024-06-15'", "DATE"},
  };
  for (const auto& [value, type] : kCases) {
    const std::string once = Eval(db, std::string("CAST(") + value + " AS " + type + ")");
    const std::string twice = Eval(db, std::string("CAST(CAST(") + value + " AS " + type +
                                           ") AS " + type + ")");
    EXPECT_EQ(once, twice) << value << " AS " << type;
  }
}

}  // namespace
}  // namespace soft
