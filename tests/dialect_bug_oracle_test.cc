// Bug-oracle tests: every injected bug of every dialect must (a) live on a
// function that exists in that dialect, (b) have an auto-constructed PoC
// that crashes the dialect with exactly that bug id, and (c) leave the
// benign registry example crash-free. The corpus totals must equal Table 4.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/dialects/dialects.h"

namespace soft {
namespace {

class DialectBugOracleTest : public testing::TestWithParam<std::string> {};

TEST_P(DialectBugOracleTest, BugCountMatchesTable4) {
  auto db = MakeDialect(GetParam());
  ASSERT_NE(db, nullptr);
  EXPECT_EQ(static_cast<int>(db->faults().bug_count()), ExpectedBugCount(GetParam()));
}

TEST_P(DialectBugOracleTest, EveryBugHostFunctionExists) {
  auto db = MakeDialect(GetParam());
  for (const BugSpec& spec : db->faults().AllBugs()) {
    if (spec.function == "PARSER" || spec.function == "CAST") {
      continue;
    }
    EXPECT_NE(db->registry().Find(spec.function), nullptr)
        << GetParam() << " bug " << spec.id << " hosts on missing function "
        << spec.function;
  }
}

TEST_P(DialectBugOracleTest, EveryBugHasATriggeringPoc) {
  auto db = MakeDialect(GetParam());
  for (const BugSpec& spec : db->faults().AllBugs()) {
    const Result<std::string> poc = BuildPocSql(*db, spec);
    ASSERT_TRUE(poc.ok()) << GetParam() << " bug " << spec.id << " ("
                          << spec.function << "): " << poc.status().ToString();
    const StatementResult r = db->Execute(*poc);
    ASSERT_TRUE(r.crashed()) << GetParam() << " bug " << spec.id << " PoC did not crash: "
                             << *poc << " -> " << r.status.ToString();
    EXPECT_EQ(r.crash->bug_id, spec.id)
        << GetParam() << ": PoC for bug " << spec.id << " triggered bug "
        << r.crash->bug_id << " instead: " << *poc;
    EXPECT_EQ(r.crash->crash, spec.crash);
    EXPECT_EQ(r.crash->pattern, spec.pattern);
  }
}

TEST_P(DialectBugOracleTest, BenignExamplesDoNotCrash) {
  auto db = MakeDialect(GetParam());
  std::set<std::string> checked;
  for (const BugSpec& spec : db->faults().AllBugs()) {
    const FunctionDef* def = db->registry().Find(spec.function);
    if (def == nullptr || def->example.empty() || !checked.insert(def->name).second) {
      continue;
    }
    const StatementResult r = db->Execute("SELECT " + def->example);
    EXPECT_FALSE(r.crashed()) << GetParam() << ": benign example crashed: "
                              << def->example << " -> " << r.crash->Summary();
  }
}

INSTANTIATE_TEST_SUITE_P(AllDialects, DialectBugOracleTest,
                         testing::ValuesIn(AllDialectNames()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(DialectCorpusTotals, MatchesPaperTable4) {
  std::map<std::string, int> by_crash;
  std::map<std::string, int> by_pattern_family;
  int total = 0;
  for (const std::string& name : AllDialectNames()) {
    auto db = MakeDialect(name);
    for (const BugSpec& spec : db->faults().AllBugs()) {
      ++total;
      by_crash[std::string(CrashTypeName(spec.crash))] += 1;
      by_pattern_family[spec.pattern.substr(0, 2)] += 1;
    }
  }
  EXPECT_EQ(total, 132);
  // Crash-type mix summed from Table 4's rows. Note: the paper's prose says
  // "12 heap buffer overflows ... 7 stack overflows", but its own Table 4
  // rows sum to HBOF 13 / SO 6 — we encode the table.
  EXPECT_EQ(by_crash["NPD"], 61);
  EXPECT_EQ(by_crash["SEGV"], 29);
  EXPECT_EQ(by_crash["HBOF"], 13);
  EXPECT_EQ(by_crash["GBOF"], 4);
  EXPECT_EQ(by_crash["UAF"], 3);
  EXPECT_EQ(by_crash["SO"], 6);
  EXPECT_EQ(by_crash["DBZ"], 2);
  EXPECT_EQ(by_crash["AF"], 14);
  // Pattern families: P1.x 56, P2.x 28, P3.x 48.
  EXPECT_EQ(by_pattern_family["P1"], 56);
  EXPECT_EQ(by_pattern_family["P2"], 28);
  EXPECT_EQ(by_pattern_family["P3"], 48);
}

TEST(DialectCatalogs, RelativeSizesFollowTable5) {
  // Table 5 ordering of triggered functions: ClickHouse > PostgreSQL >
  // MySQL > MariaDB > MonetDB. Catalog size is the driver in our engine.
  std::map<std::string, size_t> sizes;
  for (const std::string& name : AllDialectNames()) {
    sizes[name] = MakeDialect(name)->registry().size();
  }
  EXPECT_GT(sizes["clickhouse"], sizes["postgresql"]);
  EXPECT_GT(sizes["postgresql"], sizes["mysql"]);
  EXPECT_GT(sizes["mysql"], sizes["mariadb"]);
  EXPECT_GT(sizes["mariadb"], sizes["monetdb"]);
}

}  // namespace
}  // namespace soft
