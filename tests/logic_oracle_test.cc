// Wrong-result (logic-bug) oracles: the EET transformer, the cross-dialect
// differential oracle, and their campaign wiring.
//
// The two load-bearing properties, asserted as hard test failures:
//   1. Zero false positives — on a clean engine (logic faults disarmed)
//      every EET variant that executes is result-identical to its original,
//      across all seven dialects, the registry example corpus, and a
//      64-seed randomized boundary-argument sweep.
//   2. Full seeded recall — a campaign with every oracle armed finds every
//      seeded LogicBugSpec on every dialect, attributes it to an oracle,
//      and reproduces the identical logic outcome (bug set, counters,
//      digest) under partition sharding and under tracing.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "src/dialects/dialect_diffs.h"
#include "src/dialects/dialects.h"
#include "src/soft/chaos.h"
#include "src/soft/eet_transform.h"
#include "src/soft/logic_oracle.h"
#include "src/soft/soft_fuzzer.h"

namespace soft {
namespace {

class LogicOracleDialectTest : public testing::TestWithParam<std::string> {};

// Property 1: the transformer is sound. On a clean engine every variant of
// every successfully executed comparable statement returns the identical
// canonical result set. The statement pool is the registry's own example
// corpus plus randomized boundary arguments over the logic_t fixture —
// 64 seeds so const folding, NULL propagation, and overflow edges all get
// wrapped in COALESCE shells and identity chains.
TEST_P(LogicOracleDialectTest, EetVariantsAreResultIdenticalOnCleanEngine) {
  auto db = MakeDialect(GetParam());
  ASSERT_NE(db, nullptr);
  ASSERT_FALSE(db->logic_faults_enabled()) << "dialects must seed logic bugs inert";
  for (const std::string& prereq : LogicOraclePrerequisites()) {
    ASSERT_TRUE(db->Execute(prereq).ok()) << prereq;
  }

  std::vector<std::string> pool;
  std::vector<std::string> unary;  // scalar single-argument function names
  for (const FunctionDef* def : db->registry().All()) {
    if (!def->example.empty()) {
      pool.push_back("SELECT " + def->example);
    }
    if (!def->is_aggregate && def->min_args == 1) {
      unary.push_back(def->name);
    }
  }
  ASSERT_FALSE(unary.empty());
  const std::vector<std::string> literals = {
      "0",  "1",   "-1",  "2",    "3",    "0.0", "1.5",
      "-1.8", "''", "'a'", "'abc'", "NULL", "9999999999999999",
      "-9999999999999", "0.0000000001"};
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    std::mt19937_64 rng(seed);
    const std::string& fn = unary[rng() % unary.size()];
    const std::string& lit = literals[rng() % literals.size()];
    const char* cols[] = {"a", "b", "c"};
    const char* col = cols[rng() % 3];
    pool.push_back("SELECT " + fn + "(" + lit + ")");
    pool.push_back("SELECT " + fn + "(" + col + ") FROM logic_t");
    pool.push_back("SELECT COUNT(*) FROM logic_t WHERE " + fn + "(a) >= " +
                   (rng() % 2 == 0 ? "1" : "0"));
  }

  int variants_checked = 0;
  for (const std::string& sql : pool) {
    const StatementResult original = db->Execute(sql);
    if (!original.ok() || !OracleComparable(sql)) {
      continue;  // errors and volatile statements are out of oracle scope
    }
    const std::string key = CanonicalResultKey(original);
    for (const EetVariant& variant : BuildEetVariants(sql)) {
      const StatementResult rewritten = db->Execute(variant.sql);
      if (!rewritten.ok()) {
        continue;  // declared difference (e.g. depth-triggered crash corpus)
      }
      ++variants_checked;
      EXPECT_EQ(CanonicalResultKey(rewritten), key)
          << GetParam() << ": false positive — " << variant.label
          << " diverged on a clean engine\n  original: " << sql
          << "\n  variant:  " << variant.sql;
    }
  }
  // The sweep must actually exercise the transformer, not vacuously pass.
  EXPECT_GT(variants_checked, 200) << GetParam();
}

// Property 2a: full recall with attribution. Every seeded LogicBugSpec is
// found (the logic-seed PoC cases lead the campaign), attributed to the
// deterministic first flagging oracle, and no clean statement is flagged.
TEST_P(LogicOracleDialectTest, CampaignFindsEverySeededLogicBugWithZeroFalsePositives) {
  auto db = MakeDialect(GetParam());
  ASSERT_NE(db, nullptr);
  SoftFuzzer fuzzer;
  CampaignOptions options;
  options.seed = 3;
  options.max_statements = 600;
  options.stop_when_all_bugs_found = false;
  options.logic_oracles = {"all"};
  const CampaignResult result = fuzzer.Run(*db, options);

  std::set<int> found;
  for (const FoundLogicBug& bug : result.logic_bugs) {
    found.insert(bug.info.bug_id);
    EXPECT_TRUE(bug.oracle == "eet" || bug.oracle == "diff" ||
                bug.oracle == "norec" || bug.oracle == "tlp")
        << bug.oracle;
    EXPECT_FALSE(bug.poc_sql.empty());
    EXPECT_FALSE(bug.witness.empty());
  }
  std::set<int> seeded;
  for (const LogicBugSpec& spec : db->faults().AllLogicBugs()) {
    seeded.insert(spec.id);
  }
  EXPECT_EQ(found, seeded) << GetParam();
  EXPECT_EQ(static_cast<int>(found.size()), ExpectedLogicBugCount(GetParam()));
  EXPECT_EQ(result.logic_false_positives, 0) << GetParam();
  EXPECT_GT(result.logic_checks, 0) << GetParam();
  EXPECT_GE(result.logic_divergences, static_cast<int>(found.size()));
}

INSTANTIATE_TEST_SUITE_P(AllDialects, LogicOracleDialectTest,
                         testing::ValuesIn(AllDialectNames()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// Property 2b: the logic outcome is a pure function of the case partition —
// a 4-shard partitioned campaign reproduces the serial campaign's logic
// verdicts field by field (modulo the shard-local attribution columns) and
// bit-identically under DigestLogicOutcome.
TEST(LogicOracleSharding, PartitionModeReproducesSerialLogicOutcome) {
  for (const std::string dialect : {"postgresql", "virtuoso"}) {
    CampaignOptions options;
    options.seed = 11;
    options.max_statements = 900;
    options.stop_when_all_bugs_found = false;
    options.logic_oracles = {"all"};
    const CampaignResult serial = RunShardedSoftCampaign(dialect, options, 1);
    const CampaignResult sharded = RunShardedSoftCampaign(dialect, options, 4);

    EXPECT_EQ(serial.logic_checks, sharded.logic_checks) << dialect;
    EXPECT_EQ(serial.logic_divergences, sharded.logic_divergences) << dialect;
    EXPECT_EQ(serial.logic_false_positives, sharded.logic_false_positives) << dialect;
    ASSERT_EQ(serial.logic_bugs.size(), sharded.logic_bugs.size()) << dialect;
    for (size_t i = 0; i < serial.logic_bugs.size(); ++i) {
      const FoundLogicBug& s = serial.logic_bugs[i];
      const FoundLogicBug& p = sharded.logic_bugs[i];
      EXPECT_EQ(s.info.bug_id, p.info.bug_id) << dialect;
      EXPECT_EQ(s.oracle, p.oracle) << dialect;
      EXPECT_EQ(s.poc_sql, p.poc_sql) << dialect;
      EXPECT_EQ(s.witness, p.witness) << dialect;
      EXPECT_EQ(s.case_index, p.case_index)
          << dialect << ": case_index must be the global ordinal, not shard-local";
    }
    EXPECT_EQ(DigestLogicOutcome(serial), DigestLogicOutcome(sharded)) << dialect;
  }
}

TEST(LogicOracleNames, ValidationAndDeduplication) {
  for (const char* name : {"eet", "diff", "norec", "tlp", "all"}) {
    EXPECT_TRUE(IsKnownLogicOracle(name)) << name;
  }
  EXPECT_FALSE(IsKnownLogicOracle(""));
  EXPECT_FALSE(IsKnownLogicOracle("EET"));
  EXPECT_FALSE(IsKnownLogicOracle("qpg"));

  const auto all = MakeLogicOracles({"all"}, "postgresql");
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0]->name(), "eet");
  EXPECT_EQ(all[1]->name(), "diff");
  EXPECT_EQ(all[2]->name(), "norec");
  EXPECT_EQ(all[3]->name(), "tlp");
  // Duplicates and re-mentions after "all" collapse, order preserved.
  const auto deduped = MakeLogicOracles({"tlp", "tlp", "all"}, "postgresql");
  ASSERT_EQ(deduped.size(), 4u);
  EXPECT_EQ(deduped[0]->name(), "tlp");
  EXPECT_EQ(deduped[1]->name(), "eet");
}

#ifdef SOFT_TELEMETRY_ENABLED
// Property 2c: statement spans carry the oracle verdict annotation, tracing
// does not change the outcome, and no clean statement is ever annotated as
// a false positive.
TEST(LogicOracleTracing, StatementSpansCarryVerdictsWithoutPerturbingOutcome) {
  CampaignOptions options;
  options.seed = 5;
  options.max_statements = 400;
  options.stop_when_all_bugs_found = false;
  options.logic_oracles = {"all"};
  const CampaignResult untraced = RunShardedSoftCampaign("mysql", options, 1);
  options.trace_sample = 1;
  const CampaignResult traced = RunShardedSoftCampaign("mysql", options, 1);

  EXPECT_EQ(DigestCampaignResult(untraced), DigestCampaignResult(traced));
  EXPECT_EQ(DigestLogicOutcome(untraced), DigestLogicOutcome(traced));

  int verdicts = 0, bug_verdicts = 0;
  for (const trace::TraceSpan& span : traced.trace.spans) {
    if (span.kind != trace::SpanKind::kStatement) {
      continue;
    }
    for (const auto& [key, value] : span.args) {
      if (key != "oracle_verdict") {
        continue;
      }
      ++verdicts;
      EXPECT_TRUE(value == "consistent" || value == "skipped" ||
                  value.rfind("logic_bug:", 0) == 0)
          << "unexpected verdict annotation: " << value;
      if (value.rfind("logic_bug:", 0) == 0) {
        ++bug_verdicts;
      }
    }
  }
  EXPECT_GT(verdicts, 100);
  EXPECT_GE(bug_verdicts, 3);  // the three logic-seed PoC statements
}
#endif  // SOFT_TELEMETRY_ENABLED

}  // namespace
}  // namespace soft
