// End-to-end SOFT campaigns: the fuzzer must rediscover the injected Table 4
// bug corpus of every dialect from its seeds and patterns alone, without
// false crash classifications, and deterministically per seed.
#include <gtest/gtest.h>

#include <set>

#include "src/dialects/dialects.h"
#include "src/soft/soft_fuzzer.h"

namespace soft {
namespace {

CampaignResult RunCampaign(const std::string& dialect, uint64_t seed = 1,
                           int budget = 200000) {
  auto db = MakeDialect(dialect);
  SoftFuzzer fuzzer;
  CampaignOptions options;
  options.seed = seed;
  options.max_statements = budget;
  options.stop_when_all_bugs_found = true;
  return fuzzer.Run(*db, options);
}

class SoftCampaignTest : public testing::TestWithParam<std::string> {};

TEST_P(SoftCampaignTest, FindsEveryInjectedBug) {
  auto db = MakeDialect(GetParam());
  const size_t expected = db->faults().bug_count();
  const CampaignResult result = RunCampaign(GetParam());
  std::set<int> missing;
  for (const BugSpec& spec : db->faults().AllBugs()) {
    missing.insert(spec.id);
  }
  for (const FoundBug& bug : result.unique_bugs) {
    missing.erase(bug.crash.bug_id);
  }
  EXPECT_EQ(result.unique_bugs.size(), expected)
      << GetParam() << ": missing bug ids: " << [&] {
           std::string out;
           for (int id : missing) {
             out += std::to_string(id) + " ";
           }
           return out;
         }();
}

TEST_P(SoftCampaignTest, EveryFoundBugHasAReExecutablePoc) {
  const CampaignResult result = RunCampaign(GetParam());
  auto db = MakeDialect(GetParam());
  // Re-create suite prerequisites so table-backed PoCs re-execute.
  for (const FoundBug& bug : result.unique_bugs) {
    const StatementResult r = db->Execute(bug.poc_sql);
    ASSERT_TRUE(r.crashed()) << GetParam() << ": logged PoC no longer crashes: "
                             << bug.poc_sql;
    EXPECT_EQ(r.crash->bug_id, bug.crash.bug_id);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDialects, SoftCampaignTest,
                         testing::ValuesIn(AllDialectNames()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(SoftCampaign, DeterministicPerSeed) {
  const CampaignResult a = RunCampaign("mariadb", 7, 5000);
  const CampaignResult b = RunCampaign("mariadb", 7, 5000);
  ASSERT_EQ(a.unique_bugs.size(), b.unique_bugs.size());
  for (size_t i = 0; i < a.unique_bugs.size(); ++i) {
    EXPECT_EQ(a.unique_bugs[i].crash.bug_id, b.unique_bugs[i].crash.bug_id);
    EXPECT_EQ(a.unique_bugs[i].poc_sql, b.unique_bugs[i].poc_sql);
  }
  EXPECT_EQ(a.statements_executed, b.statements_executed);
  EXPECT_EQ(a.branches_covered, b.branches_covered);
}

TEST(SoftCampaign, ReportsFalsePositivesSeparately) {
  // Resource-limit kills must be triaged as false positives, never as bugs.
  const CampaignResult result = RunCampaign("mariadb");
  for (const FoundBug& bug : result.unique_bugs) {
    EXPECT_NE(bug.crash.bug_id, 0);
  }
  EXPECT_GT(result.false_positives, 0)
      << "the P3.1 length sweep should trip at least one engine limit";
}

}  // namespace
}  // namespace soft
