// Lexer/parser tests: the SQL front end every generated test case passes
// through, including render → parse round-trips.
#include <gtest/gtest.h>

#include "src/sqlparser/lexer.h"
#include "src/sqlparser/parser.h"

namespace soft {
namespace {

ExprPtr Expr_(const std::string& sql) {
  Result<ExprPtr> e = ParseExpression(sql);
  EXPECT_TRUE(e.ok()) << sql << ": " << e.status().ToString();
  return e.ok() ? std::move(e).value() : nullptr;
}

TEST(Lexer, TokenKinds) {
  const Result<std::vector<Token>> tokens = Tokenize("SELECT 'a''b', 1.5, x'FF' :: ;");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 7u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdent);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[1].text, "a'b");
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kNumber);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kBlobHex);
  EXPECT_EQ((*tokens)[5].text, "\xFF");
  EXPECT_TRUE((*tokens)[6].IsOp("::"));
}

TEST(Lexer, Comments) {
  const Result<std::vector<Token>> tokens =
      Tokenize("SELECT 1 -- trailing\n + /* block */ 2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->size(), 5u);  // SELECT 1 + 2 END
}

TEST(Lexer, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("x'ABC'").ok());  // odd hex length
  EXPECT_FALSE(Tokenize("x'XY'").ok());
  EXPECT_FALSE(Tokenize("SELECT @").ok());
  EXPECT_FALSE(Tokenize("/* unterminated").ok());
}

TEST(ParserExpr, NumberTyping) {
  EXPECT_EQ(Expr_("42")->literal.kind(), TypeKind::kInt);
  EXPECT_EQ(Expr_("1.5")->literal.kind(), TypeKind::kDecimal);
  EXPECT_EQ(Expr_("1.5e0")->literal.kind(), TypeKind::kDouble);
  // Over-int64 integers stay exact decimals (the AVG bug class needs this).
  const ExprPtr big = Expr_("123456789012345678901234567890");
  EXPECT_EQ(big->literal.kind(), TypeKind::kDecimal);
  EXPECT_EQ(big->literal.decimal_value().total_digits(), 30);
}

TEST(ParserExpr, NegativeLiteralFolding) {
  const ExprPtr e = Expr_("-0.99999");
  ASSERT_EQ(e->kind, ExprKind::kLiteral);
  EXPECT_TRUE(e->literal.decimal_value().negative());
}

TEST(ParserExpr, Precedence) {
  EXPECT_EQ(Expr_("1 + 2 * 3")->ToSql(), "(1 + (2 * 3))");
  EXPECT_EQ(Expr_("(1 + 2) * 3")->ToSql(), "((1 + 2) * 3)");
  EXPECT_EQ(Expr_("NOT 1 = 2")->ToSql(), "(NOT (1 = 2))");
  EXPECT_EQ(Expr_("1 = 2 OR 3 < 4 AND 5 > 6")->ToSql(),
            "((1 = 2) OR ((3 < 4) AND (5 > 6)))");
}

TEST(ParserExpr, CastForms) {
  const ExprPtr c1 = Expr_("CAST('12' AS INT)");
  EXPECT_EQ(c1->kind, ExprKind::kCast);
  EXPECT_EQ(c1->cast_type, TypeKind::kInt);
  const ExprPtr c2 = Expr_("'110'::Decimal256(45)");
  EXPECT_EQ(c2->kind, ExprKind::kCast);
  EXPECT_EQ(c2->cast_type, TypeKind::kDecimal);
  EXPECT_EQ(c2->cast_type_text, "Decimal256(45)");
}

TEST(ParserExpr, FunctionCalls) {
  const ExprPtr e = Expr_("JSON_LENGTH(REPEAT('[1,', 100), '$[2][1]')");
  ASSERT_EQ(e->kind, ExprKind::kFunctionCall);
  EXPECT_EQ(e->func_name, "JSON_LENGTH");
  EXPECT_EQ(e->args.size(), 2u);
  EXPECT_EQ(e->CountFunctionCalls(), 2);
  const ExprPtr agg = Expr_("JSONB_OBJECT_AGG(DISTINCT 'a', 'abc')");
  EXPECT_TRUE(agg->distinct_arg);
}

TEST(ParserExpr, StarRowArray) {
  EXPECT_TRUE(Expr_("*")->literal.is_star());
  EXPECT_EQ(Expr_("COUNT(*)")->args[0]->literal.kind(), TypeKind::kStar);
  EXPECT_EQ(Expr_("ROW(1, 1)")->kind, ExprKind::kRowCtor);
  EXPECT_EQ(Expr_("ARRAY[1, 2]")->kind, ExprKind::kArrayCtor);
  EXPECT_EQ(Expr_("ARRAY[]")->args.size(), 0u);
}

TEST(ParserExpr, DateLiterals) {
  EXPECT_EQ(Expr_("DATE '2024-06-15'")->literal.kind(), TypeKind::kDate);
  EXPECT_EQ(Expr_("TIMESTAMP '2024-06-15 10:00:00'")->literal.kind(),
            TypeKind::kDateTime);
  EXPECT_FALSE(ParseExpression("DATE '2024-13-01'").ok());
}

TEST(ParserStmt, SelectClauses) {
  const Result<Statement> s = ParseStatement(
      "SELECT a, SUM(b) AS total FROM t WHERE a > 1 GROUP BY a "
      "HAVING SUM(b) > 2 ORDER BY total DESC LIMIT 10");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  const SelectStmt* sel = s->select();
  ASSERT_NE(sel, nullptr);
  EXPECT_EQ(sel->items.size(), 2u);
  EXPECT_EQ(sel->items[1].alias, "total");
  EXPECT_EQ(sel->from_table, "t");
  EXPECT_NE(sel->where, nullptr);
  EXPECT_EQ(sel->group_by.size(), 1u);
  EXPECT_NE(sel->having, nullptr);
  EXPECT_FALSE(sel->order_by[0].ascending);
  EXPECT_EQ(sel->limit, 10);
}

TEST(ParserStmt, UnionChain) {
  const Result<Statement> s = ParseStatement("SELECT 1 UNION ALL SELECT 2 UNION SELECT 3");
  ASSERT_TRUE(s.ok());
  const SelectStmt* sel = s->select();
  ASSERT_NE(sel->union_next, nullptr);
  EXPECT_TRUE(sel->union_all);
  ASSERT_NE(sel->union_next->union_next, nullptr);
  EXPECT_FALSE(sel->union_next->union_all);
}

TEST(ParserStmt, CreateInsertDrop) {
  const Result<Statement> create = ParseStatement(
      "CREATE TABLE t (a INT NOT NULL, b VARCHAR(10), c DECIMAL(10,2))");
  ASSERT_TRUE(create.ok());
  const auto& ct = std::get<CreateTableStmt>(create->node);
  EXPECT_EQ(ct.columns.size(), 3u);
  EXPECT_TRUE(ct.columns[0].not_null);
  EXPECT_EQ(ct.columns[2].type, TypeKind::kDecimal);

  EXPECT_TRUE(ParseStatement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").ok());
  EXPECT_TRUE(ParseStatement("DROP TABLE IF EXISTS t").ok());
}

TEST(ParserStmt, Script) {
  const Result<std::vector<Statement>> script =
      ParseScript("SELECT 1; SELECT 2;; SELECT 3");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->size(), 3u);
}

TEST(ParserStmt, Errors) {
  EXPECT_FALSE(ParseStatement("SELECT").ok());
  EXPECT_FALSE(ParseStatement("SELECT 1 FROM").ok());
  EXPECT_FALSE(ParseStatement("SELECT F(").ok());
  EXPECT_FALSE(ParseStatement("CREATE TABLE").ok());
  EXPECT_FALSE(ParseStatement("SELECT 1 2").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO t VALUES").ok());
}

// Property: rendering and reparsing is a fixpoint for a corpus of shapes.
class RenderRoundTripTest : public testing::TestWithParam<const char*> {};

TEST_P(RenderRoundTripTest, RenderParseRender) {
  const Result<Statement> first = ParseStatement(GetParam());
  ASSERT_TRUE(first.ok()) << GetParam() << ": " << first.status().ToString();
  const std::string rendered = first->ToSql();
  const Result<Statement> second = ParseStatement(rendered);
  ASSERT_TRUE(second.ok()) << rendered;
  EXPECT_EQ(second->ToSql(), rendered);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RenderRoundTripTest,
    testing::Values(
        "SELECT 1",
        "SELECT -0.99999",
        "SELECT 'it''s', x'AB'",
        "SELECT UPPER(LOWER('x'))",
        "SELECT COUNT(*) FROM t",
        "SELECT CAST('1' AS INT) + 2 * 3",
        "SELECT a FROM t WHERE a > 1 AND b IS NOT NULL ORDER BY a DESC LIMIT 5",
        "SELECT SUM(DISTINCT a) FROM t GROUP BY b HAVING SUM(a) > 0",
        "SELECT 1 UNION ALL SELECT 2",
        "SELECT (SELECT MAX(a) FROM t) + 1",
        "SELECT ROW(1, 2), ARRAY[1, 2]",
        "SELECT x FROM (SELECT 1 AS x) sub",
        "INSERT INTO t VALUES (1, 'a'), (2, 'b')",
        "CREATE TABLE t (a INT NOT NULL, b STRING)",
        "SELECT JSON_LENGTH(REPEAT('[1,', 100), '$[2][1]')"));

// Recursion-depth limits: pathological nesting must produce a clean
// resource error, never exhaust the real stack. The budget is shared
// between expression nesting and SELECT nesting (parenthesized selects,
// subqueries, and UNION chains all recurse through ParseSelect).
TEST(ParserDepth, DeepParenthesizedExpressionErrorsCleanly) {
  const std::string deep =
      "SELECT " + std::string(5000, '(') + "1" + std::string(5000, ')');
  const Result<Statement> r = ParseStatement(deep);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
}

TEST(ParserDepth, ModerateParenthesizedExpressionStillParses) {
  const std::string ok =
      "SELECT " + std::string(300, '(') + "1" + std::string(300, ')');
  EXPECT_TRUE(ParseStatement(ok).ok());
}

TEST(ParserDepth, DeepParenthesizedSelectErrorsCleanly) {
  // ((((SELECT 1)))) — recursion through ParseSelect's paren branch, which
  // the expression depth parameter never saw.
  std::string deep;
  for (int i = 0; i < 2000; ++i) {
    deep += "(";
  }
  deep += "SELECT 1";
  for (int i = 0; i < 2000; ++i) {
    deep += ")";
  }
  const Result<Statement> r = ParseStatement(deep);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
}

TEST(ParserDepth, DeepScalarSubqueryErrorsCleanly) {
  // SELECT (SELECT (SELECT ... )) — each level resets the expression depth
  // at a clause boundary; only the shared SELECT budget bounds it.
  std::string deep = "SELECT ";
  for (int i = 0; i < 2000; ++i) {
    deep += "(SELECT ";
  }
  deep += "1";
  for (int i = 0; i < 2000; ++i) {
    deep += ")";
  }
  const Result<Statement> r = ParseStatement(deep);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
}

TEST(ParserDepth, ModerateSubqueryNestingStillParses) {
  std::string ok = "SELECT ";
  for (int i = 0; i < 50; ++i) {
    ok += "(SELECT ";
  }
  ok += "1";
  for (int i = 0; i < 50; ++i) {
    ok += ")";
  }
  EXPECT_TRUE(ParseStatement(ok).ok());
}

TEST(ParserDepth, LongUnionChainErrorsCleanly) {
  std::string deep = "SELECT 1";
  for (int i = 0; i < 2000; ++i) {
    deep += " UNION ALL SELECT 1";
  }
  const Result<Statement> r = ParseStatement(deep);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
}

}  // namespace
}  // namespace soft
