// The 318-bug study corpus must reproduce every statistic the paper reports
// in Sections 3–6 — computed from the records, not hard-coded.
#include <gtest/gtest.h>

#include "src/corpus/study.h"

namespace soft {
namespace {

double Pct(int part, int whole) { return 100.0 * part / whole; }

TEST(Study, Table1CountsPerDbms) {
  const BugStudy& study = BugStudy::Instance();
  EXPECT_EQ(study.total(), 318);
  const auto by_dbms = study.CountByDbms();
  EXPECT_EQ(by_dbms.at("postgresql"), 39);
  EXPECT_EQ(by_dbms.at("mysql"), 10);
  EXPECT_EQ(by_dbms.at("mariadb"), 269);
}

TEST(Study, Finding1Stages) {
  const BugStudy::StageStats stats = BugStudy::Instance().CountByStage();
  EXPECT_EQ(stats.with_backtrace, 230);
  EXPECT_EQ(stats.without_backtrace, 88);
  EXPECT_EQ(stats.execute, 161);
  EXPECT_EQ(stats.optimize, 45);
  EXPECT_EQ(stats.parse, 24);
  EXPECT_NEAR(Pct(stats.execute, stats.with_backtrace), 70.0, 0.05);
  EXPECT_NEAR(Pct(stats.optimize, stats.with_backtrace), 19.6, 0.05);
  EXPECT_NEAR(Pct(stats.parse, stats.with_backtrace), 10.4, 0.05);
}

TEST(Study, Finding2FunctionTypes) {
  const BugStudy& study = BugStudy::Instance();
  EXPECT_EQ(study.TotalOccurrences(), 508);
  const auto stats = study.FunctionTypeStats();
  // The two numerically stated Figure 1 bars.
  EXPECT_EQ(stats.at("string").occurrences, 117);
  EXPECT_EQ(stats.at("string").unique_functions, 57);
  EXPECT_EQ(stats.at("aggregate").occurrences, 91);
  EXPECT_NEAR(Pct(stats.at("string").occurrences, 508), 23.0, 0.05);
  EXPECT_NEAR(Pct(stats.at("aggregate").occurrences, 508), 17.9, 0.05);
  // "Over 40% of the bugs were caused by these two types."
  EXPECT_GT(Pct(stats.at("string").occurrences + stats.at("aggregate").occurrences, 508),
            40.0);
  // String has by far the most distinct buggy functions.
  for (const auto& [type, s] : stats) {
    if (type != "string") {
      EXPECT_LT(s.unique_functions, stats.at("string").unique_functions) << type;
    }
  }
}

TEST(Study, Table2ExpressionCounts) {
  const auto by_count = BugStudy::Instance().CountByExpressionCount();
  EXPECT_EQ(by_count.at(1), 191);
  EXPECT_EQ(by_count.at(2), 87);
  EXPECT_EQ(by_count.at(3), 23);
  EXPECT_EQ(by_count.at(4), 11);
  EXPECT_EQ(by_count.at(5), 6);
  // Finding 3: 87.5% have at most two expressions.
  EXPECT_NEAR(Pct(by_count.at(1) + by_count.at(2), 318), 87.5, 0.2);
}

TEST(Study, Finding4Prerequisites) {
  const BugStudy::PrereqStats stats = BugStudy::Instance().CountByPrereq();
  EXPECT_EQ(stats.table_and_data, 151);
  EXPECT_EQ(stats.none, 132);
  EXPECT_EQ(stats.empty_table, 35);
  EXPECT_NEAR(Pct(stats.table_and_data, 318), 47.5, 0.05);
  EXPECT_NEAR(Pct(stats.none, 318), 41.5, 0.05);
  EXPECT_NEAR(Pct(stats.empty_table, 318), 11.0, 0.05);
}

TEST(Study, Section5RootCauses) {
  const BugStudy::CauseStats stats = BugStudy::Instance().CountByCause();
  EXPECT_EQ(stats.boundary_literal, 94);
  EXPECT_EQ(stats.boundary_cast, 74);
  EXPECT_EQ(stats.boundary_nested, 110);
  EXPECT_EQ(stats.boundary_total(), 278);
  EXPECT_NEAR(Pct(stats.boundary_total(), 318), 87.4, 0.05);
  EXPECT_NEAR(Pct(stats.boundary_literal, 318), 29.5, 0.06);
  EXPECT_NEAR(Pct(stats.boundary_cast, 318), 23.3, 0.05);
  EXPECT_NEAR(Pct(stats.boundary_nested, 318), 34.6, 0.05);
  EXPECT_EQ(stats.configuration, 8);
  EXPECT_EQ(stats.table_definition, 24);
  EXPECT_EQ(stats.complex_syntax, 8);
}

TEST(Study, Section6LiteralClasses) {
  const BugStudy::LiteralClassStats stats = BugStudy::Instance().CountByLiteralClass();
  EXPECT_EQ(stats.extreme_numeric, 32);
  EXPECT_EQ(stats.empty_or_null, 21);
  EXPECT_EQ(stats.crafted_format, 41);
  EXPECT_NEAR(Pct(stats.extreme_numeric, 318), 10.0, 0.1);
  EXPECT_NEAR(Pct(stats.empty_or_null, 318), 6.6, 0.05);
  EXPECT_NEAR(Pct(stats.crafted_format, 318), 12.9, 0.05);
}

TEST(Study, InternalConsistency) {
  // Per-record invariants of the synthesized corpus.
  for (const StudiedBug& bug : BugStudy::Instance().bugs()) {
    EXPECT_GE(bug.expression_count(), 1);
    EXPECT_EQ(bug.expr_types.size(), bug.expr_functions.size());
    const bool is_literal_cause =
        bug.cause == StudiedBug::RootCause::kBoundaryLiteral;
    EXPECT_EQ(bug.literal_class != StudiedBug::LiteralClass::kNotApplicable,
              is_literal_cause)
        << bug.id;
  }
}

}  // namespace
}  // namespace soft
