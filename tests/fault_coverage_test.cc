// Unit tests for the fault-injection framework (trigger predicate DSL, stage
// attribution, parse/optimize-stage hooks) and the coverage tracker.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/coverage/coverage.h"
#include "src/engine/database.h"

namespace soft {
namespace {

BugSpec BaseSpec() {
  BugSpec spec;
  spec.id = 1;
  spec.dbms = "test";
  spec.function = "LENGTH";
  spec.function_type = "string";
  spec.crash = CrashType::kNullPointerDereference;
  spec.pattern = "P1.2";
  return spec;
}

TEST(FaultEngine, TriggerPredicates) {
  FaultEngine faults;
  BugSpec star = BaseSpec();
  star.trigger = TriggerKind::kArgIsStar;
  faults.AddBug(star);

  EXPECT_TRUE(faults.CheckFunction("LENGTH", {Value::Star()}, 1, false, Stage::kExecute)
                  .has_value());
  EXPECT_FALSE(faults.CheckFunction("LENGTH", {Value::Str("x")}, 1, false,
                                    Stage::kExecute)
                   .has_value());
  EXPECT_FALSE(faults.CheckFunction("UPPER", {Value::Star()}, 1, false, Stage::kExecute)
                   .has_value());
  // Stage mismatch never fires.
  EXPECT_FALSE(faults.CheckFunction("LENGTH", {Value::Star()}, 1, false,
                                    Stage::kOptimize)
                   .has_value());
}

TEST(FaultEngine, ArgIndexSelectivity) {
  FaultEngine faults;
  BugSpec spec = BaseSpec();
  spec.trigger = TriggerKind::kArgEmptyString;
  spec.arg_index = 1;
  faults.AddBug(spec);

  EXPECT_FALSE(faults.CheckFunction("LENGTH", {Value::Str("")}, 1, false,
                                    Stage::kExecute)
                   .has_value());
  EXPECT_TRUE(faults.CheckFunction("LENGTH", {Value::Str("x"), Value::Str("")}, 1,
                                   false, Stage::kExecute)
                  .has_value());
  // Out-of-range index never fires.
  EXPECT_FALSE(
      faults.CheckFunction("LENGTH", {Value::Str("")}, 1, false, Stage::kExecute)
          .has_value());
}

TEST(FaultEngine, NumericThresholds) {
  FaultEngine faults;
  BugSpec digits = BaseSpec();
  digits.trigger = TriggerKind::kDecimalDigitsAtLeast;
  digits.threshold = 40;
  faults.AddBug(digits);

  const Value small = Value::Dec(*Decimal::FromString(std::string(39, '9')));
  const Value big = Value::Dec(*Decimal::FromString(std::string(40, '9')));
  EXPECT_FALSE(
      faults.CheckFunction("LENGTH", {small}, 1, false, Stage::kExecute).has_value());
  EXPECT_TRUE(
      faults.CheckFunction("LENGTH", {big}, 1, false, Stage::kExecute).has_value());
  // Type-selective: a 40-char string does not match a decimal trigger.
  EXPECT_FALSE(faults.CheckFunction("LENGTH", {Value::Str(std::string(40, '9'))}, 1,
                                    false, Stage::kExecute)
                   .has_value());
}

TEST(FaultEngine, JsonDepthProbeOnStrings) {
  FaultEngine faults;
  BugSpec spec = BaseSpec();
  spec.trigger = TriggerKind::kJsonDepthAtLeast;
  spec.threshold = 10;
  faults.AddBug(spec);
  EXPECT_TRUE(faults.CheckFunction("LENGTH", {Value::Str(std::string(12, '['))}, 1,
                                   false, Stage::kExecute)
                  .has_value());
  EXPECT_FALSE(faults.CheckFunction("LENGTH", {Value::Str("[1,2]")}, 1, false,
                                    Stage::kExecute)
                   .has_value());
}

TEST(FaultEngine, FirstMatchingSpecWins) {
  FaultEngine faults;
  BugSpec first = BaseSpec();
  first.id = 1;
  first.trigger = TriggerKind::kArgIsNull;
  faults.AddBug(first);
  BugSpec second = BaseSpec();
  second.id = 2;
  second.trigger = TriggerKind::kArgIsNull;
  faults.AddBug(second);
  const auto crash =
      faults.CheckFunction("LENGTH", {Value::Null()}, 1, false, Stage::kExecute);
  ASSERT_TRUE(crash.has_value());
  EXPECT_EQ(crash->bug_id, 1);
}

TEST(FaultEngine, CastLayerBugs) {
  FaultEngine faults;
  BugSpec spec = BaseSpec();
  spec.function = "CAST";
  spec.trigger = TriggerKind::kCastTargetIs;
  spec.param_type = TypeKind::kJson;
  faults.AddBug(spec);
  EXPECT_TRUE(faults.CheckCast(TypeKind::kJson, Value::Str("[1]"), Stage::kExecute)
                  .has_value());
  EXPECT_FALSE(faults.CheckCast(TypeKind::kInt, Value::Str("1"), Stage::kExecute)
                   .has_value());
}

TEST(FaultEngine, EndToEndStageAttribution) {
  // An optimize-stage bug fires while the optimizer inspects the call; a
  // parse-stage bug fires on the raw statement text.
  Database db;
  BugSpec opt = BaseSpec();
  opt.id = 7;
  opt.function = "UPPER";
  opt.stage = Stage::kOptimize;
  opt.trigger = TriggerKind::kArgIsStar;
  db.faults().AddBug(opt);

  BugSpec parse = BaseSpec();
  parse.id = 8;
  parse.function = "PARSER";
  parse.stage = Stage::kParse;
  parse.trigger = TriggerKind::kStringContains;
  parse.param_text = "((((((((((";
  db.faults().AddBug(parse);

  const StatementResult opt_result = db.Execute("SELECT UPPER(*)");
  ASSERT_TRUE(opt_result.crashed());
  EXPECT_EQ(opt_result.crash->bug_id, 7);
  EXPECT_EQ(opt_result.crash->stage, Stage::kOptimize);

  const StatementResult parse_result = db.Execute("SELECT '((((((((((' ");
  ASSERT_TRUE(parse_result.crashed());
  EXPECT_EQ(parse_result.crash->bug_id, 8);
  EXPECT_EQ(parse_result.crash->stage, Stage::kParse);

  // Execute-stage bugs on the same engine still attribute correctly.
  BugSpec exec = BaseSpec();
  exec.id = 9;
  exec.function = "LOWER";
  exec.trigger = TriggerKind::kArgEmptyString;
  db.faults().AddBug(exec);
  const StatementResult exec_result = db.Execute("SELECT LOWER('')");
  ASSERT_TRUE(exec_result.crashed());
  EXPECT_EQ(exec_result.crash->stage, Stage::kExecute);
}

TEST(FaultEngine, CrashSummaryFormat) {
  FaultEngine faults;
  BugSpec spec = BaseSpec();
  spec.description = "test description";
  spec.trigger = TriggerKind::kAlways;
  faults.AddBug(spec);
  const auto crash = faults.CheckFunction("LENGTH", {}, 1, false, Stage::kExecute);
  ASSERT_TRUE(crash.has_value());
  const std::string summary = crash->Summary();
  EXPECT_NE(summary.find("BUG-test-1"), std::string::npos);
  EXPECT_NE(summary.find("[NPD]"), std::string::npos);
  EXPECT_NE(summary.find("LENGTH"), std::string::npos);
  EXPECT_NE(summary.find("P1.2"), std::string::npos);
}

// --- Coverage tracker -----------------------------------------------------------

TEST(Coverage, BranchAccounting) {
  CoverageTracker cov;
  EXPECT_EQ(cov.TriggeredFunctionCount(), 0u);
  cov.Hit("LENGTH", 0);
  cov.Hit("LENGTH", 1);
  cov.Hit("LENGTH", 1);  // duplicate
  cov.Hit("UPPER", 0);
  EXPECT_EQ(cov.TriggeredFunctionCount(), 2u);
  EXPECT_EQ(cov.CoveredBranchCount(), 3u);
  const auto by_fn = cov.BranchCountsByFunction();
  ASSERT_EQ(by_fn.size(), 2u);
  EXPECT_EQ(by_fn[0].first, "LENGTH");
  EXPECT_EQ(by_fn[0].second, 2);
}

TEST(Coverage, MergeAndReset) {
  CoverageTracker a;
  CoverageTracker b;
  a.Hit("F", 1);
  b.Hit("F", 2);
  b.Hit("G", 1);
  a.MergeFrom(b);
  EXPECT_EQ(a.TriggeredFunctionCount(), 2u);
  EXPECT_EQ(a.CoveredBranchCount(), 3u);
  a.Reset();
  EXPECT_EQ(a.CoveredBranchCount(), 0u);
}

TEST(Coverage, BranchKeysRoundTripThroughRestore) {
  // The worker pipe protocol serializes a child's tracker as raw branch keys
  // and rebuilds it in the supervisor (src/soft/worker.cc): key export must
  // be lossless, including function names containing '#'-adjacent characters
  // and multi-digit branch ids.
  CoverageTracker original;
  original.Hit("SUBSTR", 0);
  original.Hit("SUBSTR", 12);
  original.Hit("JSON_EXTRACT", 3);
  original.Hit("ST_AsText", 101);

  const std::vector<std::string> keys = original.BranchKeys();
  EXPECT_EQ(keys.size(), original.CoveredBranchCount());
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));

  CoverageTracker rebuilt;
  for (const std::string& key : keys) {
    rebuilt.RestoreBranchKey(key);
  }
  EXPECT_EQ(rebuilt.BranchKeys(), keys);
  EXPECT_EQ(rebuilt.CoveredBranchCount(), original.CoveredBranchCount());
  EXPECT_EQ(rebuilt.TriggeredFunctionCount(), original.TriggeredFunctionCount());
  EXPECT_EQ(rebuilt.TriggeredFunctions(), original.TriggeredFunctions());
  EXPECT_EQ(rebuilt.BranchCountsByFunction(), original.BranchCountsByFunction());
}

TEST(Coverage, MergeFromIsOrderIndependent) {
  // The parallel runner unions shard trackers in index order; the result
  // must be the same set union regardless of merge order or duplicates.
  CoverageTracker a;
  a.Hit("F", 1);
  a.Hit("F", 2);
  a.Hit("G", 1);
  CoverageTracker b;
  b.Hit("F", 2);  // overlaps a
  b.Hit("H", 7);
  CoverageTracker c;
  c.Hit("G", 1);  // overlaps a
  c.Hit("H", 8);

  CoverageTracker ab_c;
  ab_c.MergeFrom(a);
  ab_c.MergeFrom(b);
  ab_c.MergeFrom(c);
  CoverageTracker c_ba;
  c_ba.MergeFrom(c);
  c_ba.MergeFrom(b);
  c_ba.MergeFrom(a);

  EXPECT_EQ(ab_c.BranchKeys(), c_ba.BranchKeys());
  // Distinct union: F#1, F#2, G#1, H#7, H#8 across F, G, H.
  EXPECT_EQ(ab_c.CoveredBranchCount(), 5u);
  EXPECT_EQ(ab_c.TriggeredFunctionCount(), 3u);
  // Merging already-seen content is idempotent.
  ab_c.MergeFrom(a);
  EXPECT_EQ(ab_c.CoveredBranchCount(), 5u);
}

TEST(Coverage, BoundaryArgumentsReachDeeperBranches) {
  // The Table 6 mechanism in miniature: a benign call covers fewer branches
  // of SUBSTR than a boundary sweep does.
  Database benign;
  benign.Execute("SELECT SUBSTR('abcdef', 2, 3)");
  const size_t benign_branches = benign.coverage().CoveredBranchCount();

  Database boundary;
  for (const char* sql :
       {"SELECT SUBSTR('abcdef', 2, 3)", "SELECT SUBSTR('abcdef', 0)",
        "SELECT SUBSTR('abcdef', -2)", "SELECT SUBSTR('abcdef', -100)",
        "SELECT SUBSTR('abcdef', 100)", "SELECT SUBSTR('abcdef', 2, -5)"}) {
    boundary.Execute(sql);
  }
  EXPECT_GT(boundary.coverage().CoveredBranchCount(), benign_branches + 3);
}

}  // namespace
}  // namespace soft
