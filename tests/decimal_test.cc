// Decimal substrate tests: exactness across digit-count boundaries is what
// the fault corpus and Pattern 1.1/1.3 rely on.
#include <gtest/gtest.h>

#include "src/sqlvalue/decimal.h"

namespace soft {
namespace {

Decimal Dec(const std::string& text) {
  Result<Decimal> d = Decimal::FromString(text);
  EXPECT_TRUE(d.ok()) << text << ": " << d.status().ToString();
  return d.ok() ? *d : Decimal();
}

TEST(DecimalParse, BasicForms) {
  EXPECT_EQ(Dec("0").ToString(), "0");
  EXPECT_EQ(Dec("42").ToString(), "42");
  EXPECT_EQ(Dec("-42").ToString(), "-42");
  EXPECT_EQ(Dec("1.50").ToString(), "1.50");
  EXPECT_EQ(Dec("-0.5").ToString(), "-0.5");
  EXPECT_EQ(Dec(".5").ToString(), "0.5");
  EXPECT_EQ(Dec("  7  ").ToString(), "7");
}

TEST(DecimalParse, ExponentForms) {
  EXPECT_EQ(Dec("1e3").ToString(), "1000");
  EXPECT_EQ(Dec("1.5e2").ToString(), "150");
  EXPECT_EQ(Dec("1e-3").ToString(), "0.001");
  EXPECT_EQ(Dec("1.5e-2").ToString(), "0.015");
}

TEST(DecimalParse, RejectsGarbage) {
  EXPECT_FALSE(Decimal::FromString("").ok());
  EXPECT_FALSE(Decimal::FromString("abc").ok());
  EXPECT_FALSE(Decimal::FromString("1.2.3").ok());
  EXPECT_FALSE(Decimal::FromString("1e").ok());
  EXPECT_FALSE(Decimal::FromString(".").ok());
}

TEST(DecimalParse, HardDigitLimitIsResourceError) {
  const std::string huge(Decimal::kHardDigitLimit + 1, '9');
  const Result<Decimal> d = Decimal::FromString(huge);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kResourceExhausted);
}

TEST(DecimalDigits, CountsAreExact) {
  const Decimal d = Dec("123.4567");
  EXPECT_EQ(d.total_digits(), 7);
  EXPECT_EQ(d.integer_digits(), 3);
  EXPECT_EQ(d.fraction_digits(), 4);
  // The MDEV-8407 shape: a 48-digit value must report 48 digits.
  const std::string digits48(48, '9');
  EXPECT_EQ(Dec(digits48).total_digits(), 48);
}

TEST(DecimalDigits, LeadingZerosNormalized) {
  EXPECT_EQ(Dec("000123").ToString(), "123");
  EXPECT_EQ(Dec("0.500").fraction_digits(), 3);  // trailing zeros kept
  EXPECT_EQ(Dec("-000.5").ToString(), "-0.5");
}

TEST(DecimalArithmetic, AddSub) {
  EXPECT_EQ(Decimal::Add(Dec("1.5"), Dec("2.25")).ToString(), "3.75");
  EXPECT_EQ(Decimal::Add(Dec("-1.5"), Dec("1.5")).ToString(), "0.0");
  EXPECT_EQ(Decimal::Sub(Dec("1"), Dec("2")).ToString(), "-1");
  EXPECT_EQ(Decimal::Add(Dec("9999999999999999999"), Dec("1")).ToString(),
            "10000000000000000000");
}

TEST(DecimalArithmetic, MulExactAtScale) {
  EXPECT_EQ(Decimal::Mul(Dec("1.5"), Dec("2")).ToString(), "3.0");
  EXPECT_EQ(Decimal::Mul(Dec("-1.5"), Dec("1.5")).ToString(), "-2.25");
  // 40-digit multiplication stays exact.
  const std::string n20(20, '9');
  const Decimal prod = Decimal::Mul(Dec(n20), Dec(n20));
  EXPECT_EQ(prod.total_digits(), 40);
}

TEST(DecimalArithmetic, DivExactAndByZero) {
  const Result<Decimal> q = Decimal::Div(Dec("1"), Dec("4"), 4);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->ToString(), "0.2500");
  EXPECT_FALSE(Decimal::Div(Dec("1"), Dec("0")).ok());
  const Result<Decimal> third = Decimal::Div(Dec("10"), Dec("3"), 6);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->ToString(), "3.333333");
}

TEST(DecimalCompare, Ordering) {
  EXPECT_LT(Decimal::Compare(Dec("-1"), Dec("1")), 0);
  EXPECT_GT(Decimal::Compare(Dec("1.01"), Dec("1.001")), 0);
  EXPECT_EQ(Decimal::Compare(Dec("1.50"), Dec("1.5")), 0);
  EXPECT_EQ(Decimal::Compare(Dec("0"), Dec("-0")), 0);
  EXPECT_LT(Decimal::Compare(Dec("-2"), Dec("-1")), 0);
}

TEST(DecimalRound, HalfAwayFromZero) {
  EXPECT_EQ(Dec("1.25").Rounded(1).ToString(), "1.3");
  EXPECT_EQ(Dec("-1.25").Rounded(1).ToString(), "-1.3");
  EXPECT_EQ(Dec("1.24").Rounded(1).ToString(), "1.2");
  EXPECT_EQ(Dec("9.99").Rounded(1).ToString(), "10.0");
  EXPECT_EQ(Dec("1.5").Rounded(0).ToString(), "2");
  EXPECT_EQ(Dec("1.5").Rounded(3).ToString(), "1.500");
}

TEST(DecimalConvert, ToInt64RangeChecked) {
  EXPECT_EQ(*Dec("42.9").ToInt64(), 42);
  EXPECT_EQ(*Dec("-42.9").ToInt64(), -42);
  EXPECT_EQ(*Dec("9223372036854775807").ToInt64(), INT64_MAX);
  EXPECT_EQ(*Dec("-9223372036854775808").ToInt64(), INT64_MIN);
  EXPECT_FALSE(Dec("9223372036854775808").ToInt64().ok());
  EXPECT_FALSE(Dec(std::string(30, '9')).ToInt64().ok());
}

TEST(DecimalConvert, FromInt64Extremes) {
  EXPECT_EQ(Decimal::FromInt64(INT64_MIN).ToString(), "-9223372036854775808");
  EXPECT_EQ(Decimal::FromInt64(INT64_MAX).ToString(), "9223372036854775807");
  EXPECT_EQ(Decimal::FromInt64(0).ToString(), "0");
}

TEST(DecimalConvert, DoubleRoundTrip) {
  EXPECT_DOUBLE_EQ(Dec("1.5").ToDouble(), 1.5);
  EXPECT_DOUBLE_EQ(Dec("-0.25").ToDouble(), -0.25);
  const Result<Decimal> d = Decimal::FromDouble(0.1);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->ToDouble(), 0.1);
  EXPECT_FALSE(Decimal::FromDouble(1.0 / 0.0).ok());
}

TEST(DecimalScientific, Mdev23415Shape) {
  // MariaDB's String::set_real switches to scientific notation for small
  // values — the returned short string is the MDEV-23415 overflow source.
  EXPECT_EQ(Dec("0.00000000000000000000000000000001").ToScientificString(), "1e-32");
  EXPECT_EQ(Dec("150").ToScientificString(), "1.5e2");
  EXPECT_EQ(Dec("-0.5").ToScientificString(), "-5e-1");
  EXPECT_EQ(Dec("0").ToScientificString(), "0e0");
}

// Property sweep: ToString/FromString round-trips across digit lengths.
class DecimalRoundTripTest : public testing::TestWithParam<int> {};

TEST_P(DecimalRoundTripTest, StringRoundTrip) {
  const int digits = GetParam();
  const std::string nines(digits, '9');
  for (const std::string& text :
       {nines, "-" + nines, "0." + nines, "1." + nines, nines + "." + nines}) {
    const Decimal d = Dec(text);
    EXPECT_EQ(Dec(d.ToString()).ToString(), d.ToString()) << text;
    EXPECT_EQ(Decimal::Compare(d, Dec(d.ToString())), 0) << text;
  }
}

TEST_P(DecimalRoundTripTest, AddIsInverseOfSub) {
  const int digits = GetParam();
  const Decimal a = Dec(std::string(digits, '7') + ".5");
  const Decimal b = Dec("0." + std::string(digits, '3'));
  const Decimal sum = Decimal::Add(a, b);
  EXPECT_EQ(Decimal::Compare(Decimal::Sub(sum, b), a), 0) << digits;
}

INSTANTIATE_TEST_SUITE_P(DigitSweep, DecimalRoundTripTest,
                         testing::Values(1, 2, 5, 10, 20, 31, 38, 40, 41, 50, 65, 66,
                                         80, 100));

}  // namespace
}  // namespace soft
