// End-to-end sanity for the SQL engine: the statement pipeline, literals,
// operators, tables, and result sets.
#include <gtest/gtest.h>

#include "src/engine/database.h"

namespace soft {
namespace {

// Executes one statement and expects a single scalar result rendered as text.
std::string Scalar(Database& db, const std::string& sql) {
  StatementResult r = db.Execute(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status.ToString();
  if (!r.ok() || r.rows.empty() || r.rows[0].empty()) {
    return "<error: " + r.status.ToString() + ">";
  }
  return r.rows[0][0].ToDisplayString();
}

TEST(EngineBasic, SelectIntegerLiteral) {
  Database db;
  EXPECT_EQ(Scalar(db, "SELECT 42"), "42");
}

TEST(EngineBasic, SelectArithmetic) {
  Database db;
  EXPECT_EQ(Scalar(db, "SELECT 1 + 2 * 3"), "7");
  EXPECT_EQ(Scalar(db, "SELECT (1 + 2) * 3"), "9");
  // Division produces a fixed-scale exact decimal (cf. MySQL's div scale).
  EXPECT_EQ(Scalar(db, "SELECT 10 / 4"), "2.50000000");
  EXPECT_EQ(Scalar(db, "SELECT 7 % 3"), "1");
}

TEST(EngineBasic, SelectStringLiteralAndConcat) {
  Database db;
  EXPECT_EQ(Scalar(db, "SELECT 'it''s'"), "it's");
  EXPECT_EQ(Scalar(db, "SELECT 'a' || 'b'"), "ab");
}

TEST(EngineBasic, DecimalLiteralKeepsDigits) {
  Database db;
  EXPECT_EQ(Scalar(db, "SELECT 1.50"), "1.50");
  // 25-digit integer literal survives as exact decimal.
  EXPECT_EQ(Scalar(db, "SELECT 1234567890123456789012345"), "1234567890123456789012345");
}

TEST(EngineBasic, NullPropagationInOperators) {
  Database db;
  EXPECT_EQ(Scalar(db, "SELECT NULL + 1"), "NULL");
  EXPECT_EQ(Scalar(db, "SELECT NULL = NULL"), "NULL");
  EXPECT_EQ(Scalar(db, "SELECT NULL IS NULL"), "TRUE");
}

TEST(EngineBasic, FunctionCallDispatch) {
  Database db;
  EXPECT_EQ(Scalar(db, "SELECT UPPER('abc')"), "ABC");
  EXPECT_EQ(Scalar(db, "SELECT LENGTH('hello')"), "5");
  EXPECT_EQ(Scalar(db, "SELECT REPEAT('ab', 3)"), "ababab");
}

TEST(EngineBasic, UnknownFunctionIsAnError) {
  Database db;
  const StatementResult r = db.Execute("SELECT NO_SUCH_FUNC(1)");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kNotFound);
  EXPECT_FALSE(r.crashed());
}

TEST(EngineBasic, CastSyntaxBothForms) {
  Database db;
  EXPECT_EQ(Scalar(db, "SELECT CAST('12' AS INT)"), "12");
  EXPECT_EQ(Scalar(db, "SELECT '12'::INT"), "12");
  EXPECT_EQ(Scalar(db, "SELECT CAST(1 AS BOOL)"), "TRUE");
}

TEST(EngineBasic, CreateInsertSelect) {
  Database db;
  EXPECT_TRUE(db.Execute("CREATE TABLE t (a INT, b STRING)").ok());
  EXPECT_TRUE(db.Execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')").ok());
  StatementResult r = db.Execute("SELECT b FROM t WHERE a = 2");
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].ToDisplayString(), "y");
}

TEST(EngineBasic, SelectStarExpansion) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT, b INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1, 2)").ok());
  StatementResult r = db.Execute("SELECT * FROM t");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.columns.size(), 2u);
  EXPECT_EQ(r.columns[0], "a");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][1].int_value(), 2);
}

TEST(EngineBasic, AggregatesOverTable) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1), (2), (3), (NULL)").ok());
  EXPECT_EQ(Scalar(db, "SELECT COUNT(*) FROM t"), "4");
  EXPECT_EQ(Scalar(db, "SELECT COUNT(a) FROM t"), "3");
  EXPECT_EQ(Scalar(db, "SELECT SUM(a) FROM t"), "6");
  EXPECT_EQ(Scalar(db, "SELECT AVG(a) FROM t"), "2.00000000");
  EXPECT_EQ(Scalar(db, "SELECT MIN(a) FROM t"), "1");
  EXPECT_EQ(Scalar(db, "SELECT MAX(a) FROM t"), "3");
}

TEST(EngineBasic, GroupByAndHaving) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (g STRING, v INT)").ok());
  ASSERT_TRUE(
      db.Execute("INSERT INTO t VALUES ('a', 1), ('a', 2), ('b', 10)").ok());
  StatementResult r =
      db.Execute("SELECT g, SUM(v) FROM t GROUP BY g HAVING SUM(v) > 2 ORDER BY g");
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].ToDisplayString(), "a");
  EXPECT_EQ(r.rows[0][1].ToDisplayString(), "3");
  EXPECT_EQ(r.rows[1][0].ToDisplayString(), "b");
}

TEST(EngineBasic, AggregateWithoutFrom) {
  Database db;
  EXPECT_EQ(Scalar(db, "SELECT COUNT(*)"), "1");
  EXPECT_EQ(Scalar(db, "SELECT SUM(5)"), "5");
}

TEST(EngineBasic, UnionDedupAndAll) {
  Database db;
  StatementResult r = db.Execute("SELECT 1 UNION SELECT 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.rows.size(), 1u);
  r = db.Execute("SELECT 1 UNION ALL SELECT 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST(EngineBasic, UnionImplicitCastUnifiesTypes) {
  Database db;
  StatementResult r = db.Execute("SELECT 1 UNION SELECT 'a'");
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  // Both rows become strings under the common supertype.
  EXPECT_EQ(r.rows.size(), 2u);
  for (const auto& row : r.rows) {
    EXPECT_EQ(row[0].kind(), TypeKind::kString);
  }
}

TEST(EngineBasic, ScalarSubquery) {
  Database db;
  EXPECT_EQ(Scalar(db, "SELECT (SELECT 7) + 1"), "8");
}

TEST(EngineBasic, DerivedTable) {
  Database db;
  StatementResult r = db.Execute("SELECT x FROM (SELECT 3 AS x) sub");
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].ToDisplayString(), "3");
}

TEST(EngineBasic, OrderByLimitDistinct) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (3), (1), (2), (1)").ok());
  StatementResult r = db.Execute("SELECT DISTINCT a FROM t ORDER BY a DESC LIMIT 2");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].int_value(), 3);
  EXPECT_EQ(r.rows[1][0].int_value(), 2);
}

TEST(EngineBasic, DropTable) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT)").ok());
  EXPECT_TRUE(db.Execute("DROP TABLE t").ok());
  EXPECT_FALSE(db.Execute("SELECT * FROM t").ok());
  EXPECT_TRUE(db.Execute("DROP TABLE IF EXISTS t").ok());
}

TEST(EngineBasic, ScriptExecution) {
  Database db;
  const auto results = db.ExecuteScript(
      "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT a FROM t");
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.ok()) << r.status.ToString();
  }
  EXPECT_EQ(results[2].rows.size(), 1u);
}

TEST(EngineBasic, ParseErrorSurfacesAtParseStage) {
  Database db;
  const StatementResult r = db.Execute("SELEC 1");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.stage, Stage::kParse);
  EXPECT_EQ(r.status.code(), StatusCode::kParseError);
}

TEST(EngineBasic, ResourceLimitIsNotACrash) {
  Database db;
  const StatementResult r = db.Execute("SELECT REPEAT('a', 9999999999)");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(r.crashed());
}

TEST(EngineBasic, StarArgumentRejectedByDefault) {
  Database db;
  const StatementResult r = db.Execute("SELECT LENGTH(*)");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.crashed());
}

TEST(EngineBasic, CountDistinct) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1), (1), (2)").ok());
  EXPECT_EQ(Scalar(db, "SELECT COUNT(DISTINCT a) FROM t"), "2");
}

TEST(EngineBasic, RowTypeComparisonIsTypeError) {
  Database db;
  const StatementResult r = db.Execute("SELECT ROW(1, 1) = ROW(1, 2)");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kTypeError);
}

TEST(EngineBasic, CoverageTracksTriggeredFunctions) {
  Database db;
  db.Execute("SELECT UPPER(LOWER('x'))");
  EXPECT_GE(db.coverage().TriggeredFunctionCount(), 2u);
}

}  // namespace
}  // namespace soft
