// Unit tests for the 10 boundary-value-generation patterns: each pattern
// must produce its characteristic shapes, respect the Finding-3 cutoff, and
// emit only parseable SQL.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/dialects/dialects.h"
#include "src/soft/boundary_values.h"
#include "src/soft/expr_collection.h"
#include "src/soft/patterns.h"
#include "src/sqlparser/parser.h"

namespace soft {
namespace {

class PatternsTest : public testing::Test {
 protected:
  PatternsTest() : db_(MakeMariadbDialect()), engine_(*db_, 42) {}

  std::vector<GeneratedCase> Generate(const std::string& pattern,
                                      const std::string& seed,
                                      std::vector<std::string> corpus = {}) {
    std::vector<GeneratedCase> out;
    engine_.GenerateOne(pattern, seed, corpus, out);
    return out;
  }

  static bool AnyContains(const std::vector<GeneratedCase>& cases,
                          const std::string& needle) {
    return std::any_of(cases.begin(), cases.end(), [&](const GeneratedCase& c) {
      return c.sql.find(needle) != std::string::npos;
    });
  }

  std::unique_ptr<Database> db_;
  PatternEngine engine_;
};

TEST_F(PatternsTest, PoolHasTheHeadlineValues) {
  const BoundaryPool pool = GenerateBoundaryPool();
  auto has = [&](const char* s) {
    return std::find(pool.snippets.begin(), pool.snippets.end(), s) !=
           pool.snippets.end();
  };
  EXPECT_TRUE(has("NULL"));
  EXPECT_TRUE(has("*"));
  EXPECT_TRUE(has("''"));
  EXPECT_TRUE(has("-0.99999"));
  EXPECT_TRUE(has("99999"));
  EXPECT_TRUE(has("ROW(1, 1)"));
  EXPECT_TRUE(has("9223372036854775807"));
  // Digit-length enumeration, not just one extreme (Section 6's point).
  int fraction_lengths = 0;
  for (const std::string& s : pool.snippets) {
    if (s.rfind("0.9", 0) == 0) {
      ++fraction_lengths;
    }
  }
  EXPECT_GT(fraction_lengths, 8);
}

TEST_F(PatternsTest, P12SubstitutesEveryPoolValue) {
  const auto cases = Generate("P1.2", "LENGTH('abc')");
  EXPECT_GE(cases.size(), engine_.pool().snippets.size());
  EXPECT_TRUE(AnyContains(cases, "LENGTH(NULL)"));
  EXPECT_TRUE(AnyContains(cases, "LENGTH(*)"));
  EXPECT_TRUE(AnyContains(cases, "LENGTH('')"));
  for (const GeneratedCase& c : cases) {
    EXPECT_EQ(c.pattern, "P1.2");
    EXPECT_TRUE(ParseStatement(c.sql).ok()) << c.sql;
  }
}

TEST_F(PatternsTest, P13StuffsDigits) {
  const auto cases = Generate("P1.3", "FORMAT(1.5, 2)");
  ASSERT_FALSE(cases.empty());
  EXPECT_TRUE(AnyContains(cases, "99999"));
  // Both the decimal arg and the int arg get stuffed.
  EXPECT_TRUE(AnyContains(cases, "FORMAT(1.5, "));
}

TEST_F(PatternsTest, P14RepeatsStructuralChars) {
  const auto cases = Generate("P1.4", "JSON_VALID('{\"key\": 0}')");
  ASSERT_FALSE(cases.empty());
  EXPECT_TRUE(AnyContains(cases, "{{{{"));
  for (const GeneratedCase& c : cases) {
    EXPECT_TRUE(ParseStatement(c.sql).ok()) << c.sql;
  }
}

TEST_F(PatternsTest, P21WrapsInCasts) {
  const auto cases = Generate("P2.1", "LENGTH('abc')");
  EXPECT_TRUE(AnyContains(cases, "CAST('abc' AS BLOB)"));
  EXPECT_TRUE(AnyContains(cases, "AS GEOMETRY"));
  EXPECT_TRUE(AnyContains(cases, "AS JSON"));
}

TEST_F(PatternsTest, P22BuildsUnionSubqueries) {
  const auto cases = Generate("P2.2", "LENGTH('abc')");
  ASSERT_FALSE(cases.empty());
  EXPECT_TRUE(AnyContains(cases, "UNION"));
  EXPECT_TRUE(AnyContains(cases, "(SELECT 'abc' UNION SELECT"));
  for (const GeneratedCase& c : cases) {
    EXPECT_TRUE(ParseStatement(c.sql).ok()) << c.sql;
  }
}

TEST_F(PatternsTest, P23BorrowsWholeArgumentLists) {
  const auto cases =
      Generate("P2.3", "JSON_LENGTH('[1]', '$')", {"INSTR('banana', 'na')"});
  // Full-list replacement: JSON_LENGTH('banana', 'na').
  EXPECT_TRUE(AnyContains(cases, "JSON_LENGTH('banana', 'na')"));
}

TEST_F(PatternsTest, P31BuildsRepeatCalls) {
  const auto cases = Generate("P3.1", "JSON_VALID('[1,2]')");
  ASSERT_FALSE(cases.empty());
  EXPECT_TRUE(AnyContains(cases, "REPEAT('[', "));
  // Bounds sweep, not a single huge value.
  EXPECT_TRUE(AnyContains(cases, ", 100)"));
  EXPECT_TRUE(AnyContains(cases, ", 1100000)"));
}

TEST_F(PatternsTest, P31HandlesNonStringLiterals) {
  const auto cases = Generate("P3.1", "ABS(17)");
  EXPECT_TRUE(AnyContains(cases, "REPEAT('1', "));
}

TEST_F(PatternsTest, P32WrapsArguments) {
  const auto cases = Generate("P3.2", "LENGTH('abc')");
  ASSERT_FALSE(cases.empty());
  for (const GeneratedCase& c : cases) {
    // Shape: LENGTH(<FN>('abc')).
    EXPECT_TRUE(c.sql.find("LENGTH(") != std::string::npos) << c.sql;
    EXPECT_TRUE(ParseStatement(c.sql).ok()) << c.sql;
    const Result<Statement> parsed = ParseStatement(c.sql);
    EXPECT_EQ(parsed->select()->CountFunctionCalls(), 2) << c.sql;
  }
}

TEST_F(PatternsTest, P33SubstitutesNestedCalls) {
  const auto cases =
      Generate("P3.3", "ST_ASTEXT(ST_GEOMFROMTEXT('POINT(1 2)'))",
               {"INET6_ATON('255.255.255.255')"});
  // The Case 6 chain must be constructible.
  EXPECT_TRUE(AnyContains(cases, "ST_ASTEXT(INET6_ATON('255.255.255.255'))"));
}

TEST_F(PatternsTest, Finding3CutoffSkipsDeepSeeds) {
  std::vector<GeneratedCase> out;
  engine_.GenerateOne("P1.2", "UPPER(LOWER(TRIM('x')))", {}, out);
  EXPECT_TRUE(out.empty());  // 3 calls > max_seed_functions (2)
  engine_.GenerateOne("P1.2", "UPPER(LOWER('x'))", {}, out);
  EXPECT_FALSE(out.empty());  // 2 calls allowed
}

TEST_F(PatternsTest, GenerateAllEmitsEveryFamily) {
  std::vector<GeneratedCase> out;
  engine_.GenerateAll("JSON_LENGTH('[1]', '$')",
                      {"INSTR('banana', 'na')", "REPEAT('ab', 3)"}, out);
  std::set<std::string> families;
  for (const GeneratedCase& c : out) {
    families.insert(c.pattern);
  }
  for (const char* p :
       {"P1.2", "P1.3", "P1.4", "P2.1", "P2.2", "P2.3", "P3.1", "P3.2", "P3.3"}) {
    EXPECT_TRUE(families.count(p) == 1) << p;
  }
}

TEST(ExprCollection, ParenScanFindsKnownFunctions) {
  auto db = MakeMariadbDialect();
  const std::vector<std::string> found = ExtractFunctionExpressions(
      "SELECT UPPER(b), NO_SUCH(x), JSON_LENGTH(REPEAT('[', 3), '$') FROM t",
      db->registry());
  ASSERT_GE(found.size(), 3u);  // UPPER, JSON_LENGTH, and nested REPEAT
  EXPECT_EQ(found[0], "UPPER(b)");
  EXPECT_TRUE(std::any_of(found.begin(), found.end(), [](const std::string& e) {
    return e == "JSON_LENGTH(REPEAT('[', 3), '$')";
  }));
  // Unknown names are skipped; strings with parens don't confuse the scan.
  for (const std::string& e : found) {
    EXPECT_EQ(e.find("NO_SUCH"), std::string::npos);
  }
}

TEST(ExprCollection, PrerequisitesSeparated) {
  auto db = MakeMariadbDialect();
  const FunctionCorpus corpus =
      CollectCorpus(*db, {"CREATE TABLE t (a INT)", "INSERT INTO t VALUES (1)",
                          "SELECT ABS(a) FROM t"});
  EXPECT_EQ(corpus.prerequisites.size(), 2u);
  EXPECT_TRUE(std::any_of(corpus.expressions.begin(), corpus.expressions.end(),
                          [](const std::string& e) { return e == "ABS(a)"; }));
}

}  // namespace
}  // namespace soft
