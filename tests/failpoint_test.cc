// Failpoint registry semantics (src/failpoint/failpoint.h): arming modes,
// spec parsing, deterministic firing, the Status the SOFT_FAILPOINT macro
// injects, and the engine-pipeline boundary that turns an injected
// std::bad_alloc into a clean kResourceExhausted.
//
// Every test disarms on exit (ScopedFailpoint or explicit DisarmAll) — the
// registry is process-global. In a -DSOFT_FAILPOINTS=OFF build the API is
// inline no-op stubs; the tests skip rather than assert on stub behavior.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/engine/database.h"
#include "src/failpoint/failpoint.h"

namespace soft {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::kCompiledIn) {
      GTEST_SKIP() << "failpoints compiled out";
    }
    failpoint::DisarmAll();
  }
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(FailpointTest, InventoryNamesAreUniqueAndFindable) {
  std::set<std::string_view> names;
  for (const failpoint::SiteInfo& site : failpoint::kInventory) {
    EXPECT_TRUE(names.insert(site.name).second) << "duplicate " << site.name;
    const failpoint::SiteInfo* found = failpoint::FindSite(site.name);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->site_class, site.site_class);
    EXPECT_FALSE(site.where.empty());
  }
  EXPECT_EQ(failpoint::FindSite("no.such.site"), nullptr);
}

TEST_F(FailpointTest, UnarmedSitesNeverFireAndArmIsValidated) {
  EXPECT_FALSE(failpoint::AnyArmed());
  EXPECT_FALSE(failpoint::Evaluate("io.write"));

  EXPECT_FALSE(failpoint::Arm("no.such.site", failpoint::Mode::kError).ok());
  EXPECT_FALSE(
      failpoint::Arm("io.write", failpoint::Mode::kProbability, 1.5).ok());
  EXPECT_FALSE(
      failpoint::Arm("io.write", failpoint::Mode::kProbability, -0.1).ok());
  EXPECT_FALSE(failpoint::AnyArmed());

  ASSERT_TRUE(failpoint::Arm("io.write", failpoint::Mode::kError).ok());
  EXPECT_TRUE(failpoint::AnyArmed());
  EXPECT_TRUE(failpoint::Evaluate("io.write"));
  // Arming one site does not make others fire.
  EXPECT_FALSE(failpoint::Evaluate("io.fsync"));

  failpoint::Disarm("io.write");
  EXPECT_FALSE(failpoint::AnyArmed());
  EXPECT_FALSE(failpoint::Evaluate("io.write"));
}

TEST_F(FailpointTest, AfterNSkipsThenFiresWithOptionalLimit) {
  ASSERT_TRUE(
      failpoint::Arm("io.write", failpoint::Mode::kAfterN, 0.0, /*skip=*/3,
                     /*fire_limit=*/2)
          .ok());
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) {
    fired.push_back(failpoint::Evaluate("io.write"));
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, false, true, true, false,
                                      false, false}));
  const failpoint::SiteStats stats = failpoint::Stats("io.write");
  EXPECT_EQ(stats.evaluations, 8u);
  EXPECT_EQ(stats.fires, 2u);

  // Without a limit the site keeps firing.
  ASSERT_TRUE(
      failpoint::Arm("io.fsync", failpoint::Mode::kAfterN, 0.0, /*skip=*/1).ok());
  EXPECT_FALSE(failpoint::Evaluate("io.fsync"));
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(failpoint::Evaluate("io.fsync"));
  }
}

TEST_F(FailpointTest, ProbabilityStreamIsDeterministicAndReseedable) {
  auto draw = [](int n) {
    std::vector<bool> out;
    for (int i = 0; i < n; ++i) {
      out.push_back(failpoint::Evaluate("io.open"));
    }
    return out;
  };
  ASSERT_TRUE(
      failpoint::Arm("io.open", failpoint::Mode::kProbability, 0.5).ok());
  const std::vector<bool> first = draw(64);
  // DisarmAll resets the probability stream: the re-armed site replays the
  // identical draw sequence.
  failpoint::DisarmAll();
  ASSERT_TRUE(
      failpoint::Arm("io.open", failpoint::Mode::kProbability, 0.5).ok());
  EXPECT_EQ(draw(64), first);

  // Some fired and some passed (p=0.5 over 64 draws).
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);

  failpoint::DisarmAll();
  failpoint::SetProbabilitySeed(999);
  ASSERT_TRUE(
      failpoint::Arm("io.open", failpoint::Mode::kProbability, 0.5).ok());
  EXPECT_NE(draw(64), first);
}

TEST_F(FailpointTest, ArmFromSpecParsesTheChaosSyntax) {
  ASSERT_TRUE(failpoint::ArmFromSpec(
                  "io.write=error,eval.enter=after:10:3,io.open=prob:0.25")
                  .ok());
  EXPECT_TRUE(failpoint::Evaluate("io.write"));
  EXPECT_FALSE(failpoint::Evaluate("eval.enter"));  // still skipping
  failpoint::DisarmAll();

  ASSERT_TRUE(failpoint::ArmFromSpec("io.write=off").ok());
  EXPECT_FALSE(failpoint::AnyArmed());

  EXPECT_FALSE(failpoint::ArmFromSpec("io.write").ok());
  EXPECT_FALSE(failpoint::ArmFromSpec("io.write=warp").ok());
  EXPECT_FALSE(failpoint::ArmFromSpec("no.such.site=error").ok());
  EXPECT_FALSE(failpoint::ArmFromSpec("io.write=prob:nan").ok());
  EXPECT_FALSE(failpoint::ArmFromSpec("io.write=after:x").ok());
  EXPECT_FALSE(failpoint::ArmFromSpec("").ok());
}

TEST_F(FailpointTest, InjectedStatusFollowsSiteClass) {
  const Status engine = failpoint::InjectedStatus("eval.enter");
  EXPECT_EQ(engine.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(engine.message().find("eval.enter"), std::string::npos);

  const Status io = failpoint::InjectedStatus("io.write");
  EXPECT_EQ(io.code(), StatusCode::kIoError);
  EXPECT_NE(io.message().find("io.write"), std::string::npos);
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnDestruction) {
  {
    failpoint::ScopedFailpoint scoped("io.write", failpoint::Mode::kError);
    ASSERT_TRUE(scoped.status().ok());
    EXPECT_TRUE(failpoint::Evaluate("io.write"));
  }
  EXPECT_FALSE(failpoint::AnyArmed());
}

// --- engine-pipeline injection through the public Execute API -------------

TEST_F(FailpointTest, EngineSiteErrorSurfacesAsCleanResourceExhausted) {
  Database db;
  ASSERT_TRUE(db.Execute("SELECT ABS(-1)").ok());

  failpoint::ScopedFailpoint scoped("eval.function", failpoint::Mode::kError);
  const StatementResult injected = db.Execute("SELECT ABS(-1)");
  EXPECT_EQ(injected.status.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(injected.crashed());
  EXPECT_NE(injected.status.message().find("eval.function"), std::string::npos);
}

TEST_F(FailpointTest, CatalogSitesInjectOnTheirStatements) {
  Database db;
  {
    failpoint::ScopedFailpoint scoped("catalog.create", failpoint::Mode::kError);
    EXPECT_EQ(db.Execute("CREATE TABLE t (a INT)").status.code(),
              StatusCode::kResourceExhausted);
  }
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT)").ok());
  {
    failpoint::ScopedFailpoint scoped("catalog.insert", failpoint::Mode::kError);
    EXPECT_EQ(db.Execute("INSERT INTO t VALUES (1)").status.code(),
              StatusCode::kResourceExhausted);
  }
  {
    failpoint::ScopedFailpoint scoped("catalog.drop", failpoint::Mode::kError);
    EXPECT_EQ(db.Execute("DROP TABLE t").status.code(),
              StatusCode::kResourceExhausted);
  }
  ASSERT_TRUE(db.Execute("DROP TABLE t").ok());
}

TEST_F(FailpointTest, OomThrowIsCaughtAtTheExecuteBoundary) {
  Database db;
  failpoint::ScopedFailpoint scoped("parse.enter", failpoint::Mode::kOomThrow);
  const StatementResult result = db.Execute("SELECT 1");
  EXPECT_EQ(result.status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status.message().find("allocation failure"),
            std::string::npos);
  EXPECT_FALSE(result.crashed());
}

TEST_F(FailpointTest, AfterNInjectionIsStatementDeterministic) {
  // The same armed spec replayed against a fresh database injects at the
  // same statement — the property chaos campaigns rely on.
  auto run = [] {
    failpoint::DisarmAll();
    EXPECT_TRUE(failpoint::ArmFromSpec("exec.select=after:3").ok());
    Database db;
    std::vector<bool> ok;
    for (int i = 0; i < 6; ++i) {
      ok.push_back(db.Execute("SELECT 1").ok());
    }
    failpoint::DisarmAll();
    return ok;
  };
  const std::vector<bool> first = run();
  EXPECT_EQ(first, run());
  EXPECT_EQ(first, (std::vector<bool>{true, true, true, false, false, false}));
}

}  // namespace
}  // namespace soft
