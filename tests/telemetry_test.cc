// Telemetry determinism contract (docs/OBSERVABILITY.md):
//
//   * a K-shard merged CampaignTelemetry is bit-identical to summing the
//     run's own shard snapshots in shard index order — for both shard modes;
//   * partition-sharded pattern counters match the serial campaign's, except
//     `generated`, which is exactly K× the serial pool (each shard generates
//     the full pool);
//   * recording is observational: disabling telemetry at runtime changes no
//     campaign outcome;
//   * an NDJSON journal replay reconstructs the exact bug set and per-bug
//     first witnesses.
//
// Run under ThreadSanitizer together with the parallel-runner tests:
// `ctest -R 'Parallel|GoldenPoc|Telemetry'` in a -DSOFT_SANITIZE=thread tree.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/dialects/dialects.h"
#include "src/soft/parallel_runner.h"
#include "src/soft/resume.h"
#include "src/soft/soft_fuzzer.h"
#include "src/telemetry/journal.h"
#include "src/telemetry/telemetry.h"

namespace soft {
namespace {

using telemetry::CampaignTelemetry;
using telemetry::LatencyHistogram;
using telemetry::PatternCounters;

TEST(LatencyHistogramTest, BucketBoundariesArePowersOfTwoMicroseconds) {
  EXPECT_EQ(LatencyHistogram::BucketFor(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketFor(999), 0u);           // < 1 µs
  EXPECT_EQ(LatencyHistogram::BucketFor(1000), 1u);          // [1, 2) µs
  EXPECT_EQ(LatencyHistogram::BucketFor(1999), 1u);
  EXPECT_EQ(LatencyHistogram::BucketFor(2000), 2u);          // [2, 4) µs
  EXPECT_EQ(LatencyHistogram::BucketFor(3999), 2u);
  EXPECT_EQ(LatencyHistogram::BucketFor(4000), 3u);          // [4, 8) µs
  EXPECT_EQ(LatencyHistogram::BucketFor(8192 * 1000ull), 14u);
  EXPECT_EQ(LatencyHistogram::BucketFor(16384 * 1000ull), 15u);   // overflow bucket
  EXPECT_EQ(LatencyHistogram::BucketFor(uint64_t{1} << 62), 15u);
  for (size_t bucket = 1; bucket < LatencyHistogram::kBucketCount; ++bucket) {
    const uint64_t lower_us = LatencyHistogram::BucketLowerBoundUs(bucket);
    EXPECT_EQ(LatencyHistogram::BucketFor(lower_us * 1000), bucket);
    EXPECT_EQ(LatencyHistogram::BucketFor(lower_us * 1000 - 1), bucket - 1);
  }
}

TEST(LatencyHistogramTest, RecordAndMergeArePerBucketSums) {
  LatencyHistogram a;
  a.Record(500);      // bucket 0
  a.Record(1500);     // bucket 1
  a.Record(1500);
  EXPECT_EQ(a.samples, 3u);
  EXPECT_EQ(a.total_ns, 3500u);
  EXPECT_EQ(a.max_ns, 1500u);
  EXPECT_EQ(a.buckets[0], 1u);
  EXPECT_EQ(a.buckets[1], 2u);

  LatencyHistogram b;
  b.Record(2500);     // bucket 2
  b.Record(20'000'000);  // 20 ms → overflow bucket

  LatencyHistogram merged = a;
  merged.MergeFrom(b);
  EXPECT_EQ(merged.samples, 5u);
  EXPECT_EQ(merged.total_ns, a.total_ns + b.total_ns);
  EXPECT_EQ(merged.max_ns, 20'000'000u);
  EXPECT_EQ(merged.buckets[0], 1u);
  EXPECT_EQ(merged.buckets[1], 2u);
  EXPECT_EQ(merged.buckets[2], 1u);
  EXPECT_EQ(merged.buckets[15], 1u);
  EXPECT_DOUBLE_EQ(a.MeanUs(), 3500.0 / 3.0 / 1000.0);
}

TEST(CampaignTelemetryTest, MergeSumsStagesAndPatterns) {
  CampaignTelemetry a;
  a.stage_latency[0].Record(1000);
  a.patterns["P1.1"].executed = 10;
  a.patterns["P1.1"].crashes = 1;
  CampaignTelemetry b;
  b.stage_latency[0].Record(3000);
  b.stage_latency[2].Record(500);
  b.patterns["P1.1"].executed = 5;
  b.patterns["P2.2"].generated = 7;

  CampaignTelemetry merged = a;
  merged.MergeFrom(b);
  EXPECT_EQ(merged.stage_latency[0].samples, 2u);
  EXPECT_EQ(merged.stage_latency[2].samples, 1u);
  EXPECT_EQ(merged.patterns.at("P1.1").executed, 15u);
  EXPECT_EQ(merged.patterns.at("P1.1").crashes, 1u);
  EXPECT_EQ(merged.patterns.at("P2.2").generated, 7u);
  EXPECT_FALSE(merged.empty());
  EXPECT_TRUE(CampaignTelemetry{}.empty());
}

// Totals a counter field across every pattern of a snapshot.
uint64_t Total(const CampaignTelemetry& t, uint64_t PatternCounters::*field) {
  uint64_t sum = 0;
  for (const auto& [pattern, counters] : t.patterns) {
    sum += counters.*field;
  }
  return sum;
}

CampaignOptions TestOptions(uint64_t seed, int budget) {
  CampaignOptions options;
  options.seed = seed;
  options.max_statements = budget;
  return options;
}

#ifdef SOFT_TELEMETRY_ENABLED

// The campaign loop's counters must reconcile exactly with the campaign
// result they annotate — same events, counted twice, once per view.
TEST(TelemetryCampaignTest, CountersReconcileWithCampaignResult) {
  std::unique_ptr<Database> db = MakeDialect("mariadb");
  SoftFuzzer fuzzer;
  const CampaignResult result = fuzzer.Run(*db, TestOptions(11, 4000));

  const CampaignTelemetry& t = result.telemetry;
  EXPECT_EQ(Total(t, &PatternCounters::executed),
            static_cast<uint64_t>(result.statements_executed));
  EXPECT_EQ(Total(t, &PatternCounters::crashes),
            static_cast<uint64_t>(result.crashes_observed));
  EXPECT_EQ(Total(t, &PatternCounters::bugs_deduped), result.unique_bugs.size());
  EXPECT_EQ(Total(t, &PatternCounters::sql_errors),
            static_cast<uint64_t>(result.sql_errors));
  EXPECT_EQ(Total(t, &PatternCounters::false_positives),
            static_cast<uint64_t>(result.false_positives));
  // Every executed statement entered the parse stage.
  EXPECT_GE(t.stage_latency[0].samples,
            static_cast<uint64_t>(result.statements_executed));
  // Stage sample counts shrink monotonically along the pipeline.
  EXPECT_GE(t.stage_latency[0].samples, t.stage_latency[1].samples);
  EXPECT_GE(t.stage_latency[1].samples, t.stage_latency[2].samples);
}

// Partition-sharded counters match the serial campaign's except `generated`:
// every shard generates the full pool, so merged generation is exactly K×.
TEST(TelemetryCampaignTest, PartitionShardCountersMatchSerialExceptGenerated) {
  const CampaignOptions options = TestOptions(11, 4000);
  const int kShards = 4;
  const CampaignResult serial =
      RunShardedSoftCampaign("mariadb", options, 1, SoftOptions(),
                             ShardMode::kPartitionCases);
  const CampaignResult sharded =
      RunShardedSoftCampaign("mariadb", options, kShards, SoftOptions(),
                             ShardMode::kPartitionCases);

  ASSERT_FALSE(serial.telemetry.patterns.empty());
  for (const auto& [pattern, counters] : serial.telemetry.patterns) {
    ASSERT_TRUE(sharded.telemetry.patterns.count(pattern)) << pattern;
    const PatternCounters& merged = sharded.telemetry.patterns.at(pattern);
    EXPECT_EQ(merged.executed, counters.executed) << pattern;
    EXPECT_EQ(merged.crashes, counters.crashes) << pattern;
    EXPECT_EQ(merged.sql_errors, counters.sql_errors) << pattern;
    EXPECT_EQ(merged.false_positives, counters.false_positives) << pattern;
    EXPECT_EQ(merged.generated, counters.generated * kShards) << pattern;
  }
  // Shard-local dedup can witness one bug in several shards, so the merged
  // first-witness count is bounded below by the global unique-bug count.
  EXPECT_GE(Total(sharded.telemetry, &PatternCounters::bugs_deduped),
            sharded.unique_bugs.size());
}

// Turning recording off at runtime must change no campaign outcome.
TEST(TelemetryCampaignTest, DisablingTelemetryChangesNoCampaignOutcome) {
  const CampaignOptions options = TestOptions(3, 5000);
  const CampaignResult lit =
      RunShardedSoftCampaign("virtuoso", options, 2, SoftOptions(),
                             ShardMode::kPartitionCases);
  telemetry::SetRuntimeEnabled(false);
  const CampaignResult dark =
      RunShardedSoftCampaign("virtuoso", options, 2, SoftOptions(),
                             ShardMode::kPartitionCases);
  telemetry::SetRuntimeEnabled(true);

  EXPECT_FALSE(lit.telemetry.empty());
  EXPECT_TRUE(dark.telemetry.empty());
  EXPECT_EQ(lit.statements_executed, dark.statements_executed);
  EXPECT_EQ(lit.sql_errors, dark.sql_errors);
  EXPECT_EQ(lit.crashes_observed, dark.crashes_observed);
  EXPECT_EQ(lit.false_positives, dark.false_positives);
  EXPECT_EQ(lit.functions_triggered, dark.functions_triggered);
  EXPECT_EQ(lit.branches_covered, dark.branches_covered);
  EXPECT_EQ(lit.shard_statements, dark.shard_statements);
  ASSERT_EQ(lit.unique_bugs.size(), dark.unique_bugs.size());
  for (size_t i = 0; i < lit.unique_bugs.size(); ++i) {
    EXPECT_EQ(lit.unique_bugs[i].crash.bug_id, dark.unique_bugs[i].crash.bug_id);
    EXPECT_EQ(lit.unique_bugs[i].poc_sql, dark.unique_bugs[i].poc_sql);
    EXPECT_EQ(lit.unique_bugs[i].found_by, dark.unique_bugs[i].found_by);
    EXPECT_EQ(lit.unique_bugs[i].statements_until_found,
              dark.unique_bugs[i].statements_until_found);
    EXPECT_EQ(lit.unique_bugs[i].shard, dark.unique_bugs[i].shard);
  }
}

TEST(TelemetryNamedLatencyTest, RecordedNamesAppearInSnapshot) {
  telemetry::RecordNamedLatency("telemetry_test_probe", 1500);
  telemetry::RecordNamedLatency("telemetry_test_probe", 2500);
  const auto snapshot = telemetry::NamedLatencySnapshot();
  ASSERT_TRUE(snapshot.count("telemetry_test_probe"));
  EXPECT_GE(snapshot.at("telemetry_test_probe").samples, 2u);
}

#endif  // SOFT_TELEMETRY_ENABLED

class TelemetryMergeTest : public testing::TestWithParam<ShardMode> {};

// The merged snapshot is the shard-index-ordered sum of the run's own shard
// snapshots — bit-identical, both shard modes, on a single run (histogram
// contents vary across runs with wall time; the merge must not).
TEST_P(TelemetryMergeTest, MergedTelemetryIsShardIndexOrderedSum) {
  const CampaignResult sharded = RunShardedSoftCampaign(
      "postgresql", TestOptions(7, 3000), 4, SoftOptions(), GetParam());
  ASSERT_EQ(sharded.shard_telemetry.size(), 4u);
  CampaignTelemetry summed;
  for (const CampaignTelemetry& shard : sharded.shard_telemetry) {
    summed.MergeFrom(shard);
  }
  EXPECT_EQ(sharded.telemetry, summed);
}

INSTANTIATE_TEST_SUITE_P(BothModes, TelemetryMergeTest,
                         testing::Values(ShardMode::kPartitionCases,
                                         ShardMode::kSplitBudget),
                         [](const testing::TestParamInfo<ShardMode>& info) {
                           return info.param == ShardMode::kPartitionCases
                                      ? "partition"
                                      : "split";
                         });

// Journal round trip: replaying the NDJSON stream reconstructs the exact bug
// set, per-bug first witnesses, and campaign totals.
TEST(TelemetryJournalTest, ReplayReconstructsExactBugSet) {
  const CampaignOptions options = TestOptions(5, 6000);
  const CampaignResult result = RunShardedSoftCampaign(
      "mariadb", options, 3, SoftOptions(), ShardMode::kPartitionCases);
  ASSERT_FALSE(result.unique_bugs.empty());

  std::stringstream stream;
  telemetry::WriteCampaignJournal(stream, options, result, 123456789);
  const Result<telemetry::JournalReplay> replayed =
      telemetry::ReplayJournal(stream);
  ASSERT_TRUE(replayed.ok()) << replayed.status().message();

  EXPECT_EQ(replayed->tool, result.tool);
  EXPECT_EQ(replayed->dialect, result.dialect);
  EXPECT_EQ(replayed->seed, options.seed);
  EXPECT_EQ(replayed->budget, options.max_statements);
  EXPECT_EQ(replayed->shards, result.shards);
  EXPECT_EQ(replayed->shard_statements, result.shard_statements);
  EXPECT_EQ(replayed->statements_executed, result.statements_executed);
  EXPECT_EQ(replayed->functions_triggered, result.functions_triggered);
  EXPECT_EQ(replayed->branches_covered, result.branches_covered);
  EXPECT_TRUE(replayed->finished);
  EXPECT_DOUBLE_EQ(replayed->wall_ms, 123.457);  // %.3f of 123456789 ns

  std::set<int> expected_ids;
  ASSERT_EQ(replayed->witnesses.size(), result.unique_bugs.size());
  for (size_t i = 0; i < result.unique_bugs.size(); ++i) {
    const FoundBug& bug = result.unique_bugs[i];
    const telemetry::JournalWitness& witness = replayed->witnesses[i];
    EXPECT_EQ(witness.bug_id, bug.crash.bug_id);
    EXPECT_EQ(witness.pattern, bug.found_by);
    EXPECT_EQ(witness.statement_index, bug.statements_until_found);
    EXPECT_EQ(witness.shard, bug.shard);
    expected_ids.insert(bug.crash.bug_id);
  }
  EXPECT_EQ(replayed->BugIds(), expected_ids);
}

// wall_ms alone is ambiguous: 0 can mean "telemetry was off" or "sub-
// millisecond hit". The recorded flag disambiguates and must survive the
// round trip for both values.
TEST(TelemetryJournalTest, WitnessRecordedFlagRoundTrips) {
  CampaignResult result;
  result.tool = "SOFT";
  result.dialect = "duckdb";
  result.statements_executed = 10;
  result.shards = 1;
  result.shard_statements = {10};

  FoundBug instant;  // genuine sub-millisecond witness: wall 0 but recorded
  instant.crash.bug_id = 1;
  instant.found_by = "P1.1";
  instant.statements_until_found = 3;
  instant.found_wall_ns = 0;
  instant.wall_recorded = true;
  FoundBug dark;  // telemetry off: wall 0 and NOT recorded
  dark.crash.bug_id = 2;
  dark.found_by = "P2.1";
  dark.statements_until_found = 7;
  dark.found_wall_ns = 0;
  dark.wall_recorded = false;
  result.unique_bugs = {instant, dark};

  std::stringstream stream;
  telemetry::WriteCampaignJournal(stream, CampaignOptions(), result, 0);
  const Result<telemetry::JournalReplay> replayed = telemetry::ReplayJournal(stream);
  ASSERT_TRUE(replayed.ok()) << replayed.status().message();
  ASSERT_EQ(replayed->witnesses.size(), 2u);
  EXPECT_DOUBLE_EQ(replayed->witnesses[0].wall_ms, 0.0);
  EXPECT_TRUE(replayed->witnesses[0].recorded);
  EXPECT_DOUBLE_EQ(replayed->witnesses[1].wall_ms, 0.0);
  EXPECT_FALSE(replayed->witnesses[1].recorded);
}

// Journals written before the recorded flag existed replay with the old
// inference: nonzero wall_ms means recorded.
TEST(TelemetryJournalTest, LegacyWitnessLinesInferRecordedFromWallMs) {
  std::stringstream legacy(
      "{\"event\":\"campaign_start\",\"tool\":\"SOFT\",\"dialect\":\"duckdb\","
      "\"seed\":1,\"budget\":10,\"shards\":1}\n"
      "{\"event\":\"first_witness\",\"bug_id\":1,\"pattern\":\"P1.1\","
      "\"statement_index\":3,\"shard\":0,\"wall_ms\":1.500}\n"
      "{\"event\":\"first_witness\",\"bug_id\":2,\"pattern\":\"P2.1\","
      "\"statement_index\":7,\"shard\":0,\"wall_ms\":0.000}\n");
  const Result<telemetry::JournalReplay> replayed = telemetry::ReplayJournal(legacy);
  ASSERT_TRUE(replayed.ok()) << replayed.status().message();
  ASSERT_EQ(replayed->witnesses.size(), 2u);
  EXPECT_TRUE(replayed->witnesses[0].recorded);
  EXPECT_FALSE(replayed->witnesses[1].recorded);
}

TEST(TelemetryJournalTest, ReplayRejectsMalformedStreams) {
  {
    std::stringstream empty;
    EXPECT_FALSE(telemetry::ReplayJournal(empty).ok());
  }
  {
    std::stringstream unknown(
        "{\"event\":\"campaign_start\",\"tool\":\"t\",\"dialect\":\"d\","
        "\"seed\":1,\"budget\":10,\"shards\":1}\n"
        "{\"event\":\"warp_drive\"}\n");
    EXPECT_FALSE(telemetry::ReplayJournal(unknown).ok());
  }
  {
    std::stringstream no_event("{\"foo\":1}\n");
    EXPECT_FALSE(telemetry::ReplayJournal(no_event).ok());
  }
  {
    std::stringstream missing_field(
        "{\"event\":\"campaign_start\",\"tool\":\"t\"}\n");
    EXPECT_FALSE(telemetry::ReplayJournal(missing_field).ok());
  }
}

CampaignCheckpoint TestCheckpoint(int cases, int bugs) {
  CampaignCheckpoint cp;
  cp.every = 10;
  cp.cases_completed = cases;
  cp.sql_errors = cases / 3;
  cp.unique_bugs = bugs;
  cp.rng_fingerprint = 0xABCDull + static_cast<uint64_t>(cases);
  cp.dedup_digest = 0x1234ull + static_cast<uint64_t>(bugs);
  return cp;
}

TEST(TelemetryJournalTest, CampaignFinishCarriesJournalDegraded) {
  const CampaignOptions options = TestOptions(5, 3000);
  CampaignResult result = RunShardedSoftCampaign("mariadb", options, 1);
  result.journal_degraded = true;

  std::stringstream stream;
  telemetry::WriteCampaignJournal(stream, options, result, 0);
  EXPECT_NE(stream.str().find("\"journal_degraded\":1"), std::string::npos);
  const Result<telemetry::JournalReplay> replayed = telemetry::ReplayJournal(stream);
  ASSERT_TRUE(replayed.ok()) << replayed.status().message();
  EXPECT_TRUE(replayed->journal_degraded);
}

TEST(TelemetryJournalTest, TornTailIsDroppedNotFatal) {
  const CampaignOptions options = TestOptions(1, 100);
  std::stringstream stream;
  telemetry::WriteCampaignStart(stream, options, "SOFT", "mariadb", 1);
  telemetry::WriteCheckpointRecord(stream, TestCheckpoint(10, 1));
  telemetry::WriteCheckpointRecord(stream, TestCheckpoint(20, 2));
  const std::string full = stream.str();
  ASSERT_EQ(full.back(), '\n');

  // Kill -9 mid-write of the second checkpoint: the record loses its tail.
  std::stringstream torn(full.substr(0, full.size() - 7));
  const Result<telemetry::JournalReplay> replayed = telemetry::ReplayJournal(torn);
  ASSERT_TRUE(replayed.ok()) << replayed.status().message();
  EXPECT_TRUE(replayed->torn_tail);
  EXPECT_FALSE(replayed->finished);
  ASSERT_EQ(replayed->checkpoints.size(), 1u);
  EXPECT_EQ(replayed->checkpoints[0], TestCheckpoint(10, 1));

  // A '\n'-terminated but unparseable line is still a hard error — the
  // torn-tail tolerance applies only to the final unterminated record.
  std::stringstream corrupt(full + "{\"event\":\"checkpoint\"\n");
  EXPECT_FALSE(telemetry::ReplayJournal(corrupt).ok());
}

TEST(TelemetryJournalTest, TruncationAtEveryByteOffsetReplaysIntactPrefix) {
  const CampaignOptions options = TestOptions(1, 100);
  std::stringstream stream;
  telemetry::WriteCampaignStart(stream, options, "SOFT", "mariadb", 1);
  std::vector<CampaignCheckpoint> written;
  for (int i = 1; i <= 3; ++i) {
    written.push_back(TestCheckpoint(10 * i, i));
    telemetry::WriteCheckpointRecord(stream, written.back());
  }
  const std::string full = stream.str();

  std::vector<size_t> line_ends;  // offset one past each '\n'
  for (size_t i = 0; i < full.size(); ++i) {
    if (full[i] == '\n') {
      line_ends.push_back(i + 1);
    }
  }
  ASSERT_EQ(line_ends.size(), 4u);

  for (size_t len = 0; len <= full.size(); ++len) {
    std::stringstream in(full.substr(0, len));
    const Result<telemetry::JournalReplay> replayed = telemetry::ReplayJournal(in);
    if (len < line_ends.front()) {
      // campaign_start itself is torn away: nothing to replay from.
      EXPECT_FALSE(replayed.ok()) << "offset " << len;
      continue;
    }
    ASSERT_TRUE(replayed.ok()) << "offset " << len << ": "
                               << replayed.status().message();
    size_t complete_lines = 0;
    for (const size_t end : line_ends) {
      complete_lines += end <= len ? 1 : 0;
    }
    // Exactly the fully-written checkpoints survive, in order.
    ASSERT_EQ(replayed->checkpoints.size(), complete_lines - 1) << "offset " << len;
    for (size_t i = 0; i < replayed->checkpoints.size(); ++i) {
      EXPECT_EQ(replayed->checkpoints[i], written[i]) << "offset " << len;
    }
    EXPECT_EQ(replayed->torn_tail, full[len - 1] != '\n') << "offset " << len;
    EXPECT_FALSE(replayed->finished);
  }
}

TEST(TelemetryJournalTest, ReplayAcceptsChaosMarker) {
  const CampaignOptions options = TestOptions(1, 100);
  std::stringstream stream;
  telemetry::WriteCampaignStart(stream, options, "SOFT", "mariadb", 1);
  telemetry::WriteChaosMarker(stream, "io.write=error,eval.enter=after:50");
  const Result<telemetry::JournalReplay> replayed = telemetry::ReplayJournal(stream);
  ASSERT_TRUE(replayed.ok()) << replayed.status().message();
  ASSERT_EQ(replayed->chaos_specs.size(), 1u);
  EXPECT_EQ(replayed->chaos_specs[0], "io.write=error,eval.enter=after:50");
}

TEST(TelemetryJournalTest, ResumeFromTornJournalMatchesUninterruptedRun) {
  CampaignOptions options = TestOptions(7, 4000);
  options.checkpoint_every = 500;
  std::stringstream stream;
  telemetry::WriteCampaignStart(stream, options, "SOFT", "mariadb", 1);
  options.checkpoint_sink = [&stream](const CampaignCheckpoint& cp) {
    telemetry::WriteCheckpointRecord(stream, cp);
    return stream.good();
  };
  const CampaignResult uninterrupted = RunShardedSoftCampaign("mariadb", options, 1);
  const std::string full = stream.str();
  ASSERT_GT(full.size(), 40u);

  // The producer dies mid-record: keep the intact prefix plus a torn tail.
  const std::string journal_path =
      "torn_resume_" + std::to_string(::getpid()) + ".ndjson";
  {
    std::ofstream out(journal_path, std::ios::trunc);
    out << full.substr(0, full.size() - 25);
  }

  const Result<ResumeSpec> spec = LoadResumeSpec(journal_path);
  std::remove(journal_path.c_str());
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  EXPECT_TRUE(spec->has_checkpoint);
  EXPECT_FALSE(spec->finished);

  CampaignOptions resume_base;
  const Result<CampaignResult> resumed = ResumeSoftCampaign(*spec, resume_base);
  ASSERT_TRUE(resumed.ok()) << resumed.status().message();
  EXPECT_EQ(resumed->statements_executed, uninterrupted.statements_executed);
  ASSERT_EQ(resumed->unique_bugs.size(), uninterrupted.unique_bugs.size());
  for (size_t i = 0; i < resumed->unique_bugs.size(); ++i) {
    EXPECT_EQ(resumed->unique_bugs[i].crash.bug_id,
              uninterrupted.unique_bugs[i].crash.bug_id);
    EXPECT_EQ(resumed->unique_bugs[i].poc_sql, uninterrupted.unique_bugs[i].poc_sql);
  }
}

TEST(TelemetryJournalTest, ToJsonCarriesStagesAndPatterns) {
  CampaignTelemetry t;
  t.stage_latency[0].Record(1000);
  t.patterns["P1.1"].executed = 3;
  const std::string json = t.ToJson();
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  EXPECT_NE(json.find("\"parse\""), std::string::npos);
  EXPECT_NE(json.find("\"optimize\""), std::string::npos);
  EXPECT_NE(json.find("\"execute\""), std::string::npos);
  EXPECT_NE(json.find("\"P1.1\""), std::string::npos);
  EXPECT_NE(json.find("\"executed\":3"), std::string::npos);
}

TEST(TelemetryJournalTest, ToJsonCarriesLogicOracleCounters) {
  CampaignTelemetry t;
  t.patterns["logic-seed"].logic_checks = 5;
  t.patterns["logic-seed"].logic_bugs = 2;
  const std::string json = t.ToJson();
  EXPECT_NE(json.find("\"logic_checks\":5"), std::string::npos);
  EXPECT_NE(json.find("\"logic_bugs\":2"), std::string::npos);
}

// A logic (--oracle) campaign's journal replays to the exact wrong-result
// bug set with attribution, alongside the crash-bug witness stream.
TEST(TelemetryJournalTest, LogicBugEventsReplayToExactBugSet) {
  CampaignOptions options = TestOptions(5, 400);
  options.stop_when_all_bugs_found = false;
  options.logic_oracles = {"all"};
  const CampaignResult result = RunShardedSoftCampaign("mysql", options, 1);
  ASSERT_FALSE(result.logic_bugs.empty());

  std::stringstream stream;
  telemetry::WriteCampaignJournal(stream, options, result, 0);
  const Result<telemetry::JournalReplay> replayed = telemetry::ReplayJournal(stream);
  ASSERT_TRUE(replayed.ok()) << replayed.status().message();

  ASSERT_EQ(replayed->logic_bugs.size(), result.logic_bugs.size());
  std::set<int> expected_ids;
  for (size_t i = 0; i < result.logic_bugs.size(); ++i) {
    const FoundLogicBug& bug = result.logic_bugs[i];
    const telemetry::JournalLogicBug& event = replayed->logic_bugs[i];
    EXPECT_EQ(event.bug_id, bug.info.bug_id);
    EXPECT_EQ(event.oracle, bug.oracle);
    EXPECT_EQ(event.function, bug.info.function);
    EXPECT_EQ(event.effect, LogicEffectName(bug.info.effect));
    EXPECT_EQ(event.scope, LogicScopeName(bug.info.scope));
    EXPECT_EQ(event.case_index, bug.case_index);
    EXPECT_EQ(event.statement_index, bug.statements_until_found);
    EXPECT_EQ(event.shard, bug.shard);
    EXPECT_EQ(event.poc, bug.poc_sql);
    EXPECT_EQ(event.witness, bug.witness);
    expected_ids.insert(bug.info.bug_id);
  }
  EXPECT_EQ(replayed->LogicBugIds(), expected_ids);
  EXPECT_EQ(replayed->logic_checks, result.logic_checks);
  EXPECT_EQ(replayed->logic_divergences, result.logic_divergences);
  EXPECT_EQ(replayed->logic_false_positives, result.logic_false_positives);
}

// Tearing the final record (the campaign_finish line) must not lose the
// logic_bug events written before it.
TEST(TelemetryJournalTest, LogicBugEventsSurviveTornTail) {
  CampaignResult result;
  result.tool = "SOFT";
  result.dialect = "duckdb";
  result.statements_executed = 9;
  result.shards = 1;
  result.shard_statements = {9};
  result.logic_checks = 4;
  result.logic_divergences = 1;
  FoundLogicBug bug;
  bug.info.bug_id = 501;
  bug.info.function = "LENGTH";
  bug.oracle = "eet";
  bug.poc_sql = "SELECT LENGTH('abc')";
  bug.witness = "SELECT COALESCE(LENGTH('abc'), LENGTH('abc'))";
  bug.case_index = 2;
  result.logic_bugs.push_back(bug);

  std::stringstream intact;
  telemetry::WriteCampaignJournal(intact, CampaignOptions(), result, 0);
  const std::string full = intact.str();
  std::stringstream torn(full.substr(0, full.size() - 7));
  const Result<telemetry::JournalReplay> replayed = telemetry::ReplayJournal(torn);
  ASSERT_TRUE(replayed.ok()) << replayed.status().message();
  EXPECT_TRUE(replayed->torn_tail);
  EXPECT_FALSE(replayed->finished);
  ASSERT_EQ(replayed->logic_bugs.size(), 1u);
  EXPECT_EQ(replayed->logic_bugs[0].bug_id, 501);
  EXPECT_EQ(replayed->logic_bugs[0].oracle, "eet");
  EXPECT_EQ(replayed->logic_bugs[0].case_index, 2);
}

TEST(TelemetryJournalTest, ReplayRejectsMalformedLogicBug) {
  std::stringstream missing_oracle(
      "{\"event\":\"campaign_start\",\"tool\":\"SOFT\",\"dialect\":\"duckdb\","
      "\"seed\":1,\"budget\":10,\"shards\":1}\n"
      "{\"event\":\"logic_bug\",\"bug_id\":501,\"function\":\"LENGTH\","
      "\"effect\":\"truncate\",\"scope\":\"top_level_call\",\"case_index\":0,"
      "\"statement_index\":1,\"shard\":0,\"poc\":\"SELECT 1\",\"witness\":\"w\"}\n");
  EXPECT_FALSE(telemetry::ReplayJournal(missing_oracle).ok());
}

// Journals written before the logic oracles existed replay with zeroed
// logic counters and no logic_bug events.
TEST(TelemetryJournalTest, LegacyFinishLinesReplayWithZeroLogicCounters) {
  std::stringstream legacy(
      "{\"event\":\"campaign_start\",\"tool\":\"SOFT\",\"dialect\":\"duckdb\","
      "\"seed\":1,\"budget\":10,\"shards\":1}\n"
      "{\"event\":\"campaign_finish\",\"statements\":10,\"sql_errors\":2,"
      "\"crashes_observed\":0,\"false_positives\":0,\"unique_bugs\":0,"
      "\"functions_triggered\":3,\"branches_covered\":4,\"wall_ms\":1.000}\n");
  const Result<telemetry::JournalReplay> replayed = telemetry::ReplayJournal(legacy);
  ASSERT_TRUE(replayed.ok()) << replayed.status().message();
  EXPECT_TRUE(replayed->finished);
  EXPECT_TRUE(replayed->logic_bugs.empty());
  EXPECT_EQ(replayed->logic_checks, 0);
  EXPECT_EQ(replayed->logic_divergences, 0);
  EXPECT_EQ(replayed->logic_false_positives, 0);
}

}  // namespace
}  // namespace soft
