// Value semantics and the cast matrix — the Pattern 2.x substrate.
#include <gtest/gtest.h>

#include "src/sqlvalue/cast.h"
#include "src/sqlvalue/value.h"

namespace soft {
namespace {

CastOptions Strict() {
  CastOptions o;
  o.strict = true;
  return o;
}

CastOptions Lenient() { return CastOptions(); }

TEST(ValueKinds, TagsMatchFactories) {
  EXPECT_EQ(Value::Null().kind(), TypeKind::kNull);
  EXPECT_EQ(Value::Boolean(true).kind(), TypeKind::kBool);
  EXPECT_EQ(Value::Int(1).kind(), TypeKind::kInt);
  EXPECT_EQ(Value::DoubleVal(1.5).kind(), TypeKind::kDouble);
  EXPECT_EQ(Value::Str("x").kind(), TypeKind::kString);
  EXPECT_EQ(Value::BlobVal("x").kind(), TypeKind::kBlob);
  EXPECT_EQ(Value::Star().kind(), TypeKind::kStar);
  EXPECT_EQ(Value::ArrayVal({Value::Int(1)}).kind(), TypeKind::kArray);
  EXPECT_EQ(Value::RowVal({Value::Int(1)}).kind(), TypeKind::kRow);
}

TEST(ValueCompare, CrossNumericExact) {
  // Decimal/int comparison is exact, not via double.
  const Value big1 = Value::Dec(*Decimal::FromString("10000000000000000000000001"));
  const Value big2 = Value::Dec(*Decimal::FromString("10000000000000000000000002"));
  EXPECT_EQ(*Value::Compare(big1, big2), -1);
  EXPECT_EQ(*Value::Compare(Value::Int(2), Value::DoubleVal(1.5)), 1);
  EXPECT_EQ(*Value::Compare(Value::Int(2), Value::Dec(Decimal::FromInt64(2))), 0);
}

TEST(ValueCompare, NullsSortFirstAndEqual) {
  EXPECT_EQ(*Value::Compare(Value::Null(), Value::Null()), 0);
  EXPECT_EQ(*Value::Compare(Value::Null(), Value::Int(0)), -1);
  EXPECT_EQ(*Value::Compare(Value::Int(0), Value::Null()), 1);
}

TEST(ValueCompare, RowsAreNotComparable) {
  const Value r1 = Value::RowVal({Value::Int(1), Value::Int(1)});
  const Value r2 = Value::RowVal({Value::Int(1), Value::Int(2)});
  const Result<int> cmp = Value::Compare(r1, r2);
  ASSERT_FALSE(cmp.ok());  // the MDEV-14596 class
  EXPECT_EQ(cmp.status().code(), StatusCode::kTypeError);
  // Structural equality still works.
  EXPECT_FALSE(r1.Equals(r2));
  EXPECT_TRUE(r1.Equals(Value::RowVal({Value::Int(1), Value::Int(1)})));
}

TEST(ValueLiterals, SqlRoundTripText) {
  EXPECT_EQ(Value::Str("it's").ToSqlLiteral(), "'it''s'");
  EXPECT_EQ(Value::Null().ToSqlLiteral(), "NULL");
  EXPECT_EQ(Value::Star().ToSqlLiteral(), "*");
  EXPECT_EQ(Value::BlobVal(std::string("\x01\xAB", 2)).ToSqlLiteral(), "x'01AB'");
}

// --- Cast matrix ---------------------------------------------------------------

TEST(CastMatrix, NullCastsToNullEverywhere) {
  for (int k = 1; k < kNumTypeKinds - 1; ++k) {
    const Result<Value> out = CastValue(Value::Null(), static_cast<TypeKind>(k));
    ASSERT_TRUE(out.ok()) << k;
    EXPECT_TRUE(out->is_null()) << k;
  }
}

TEST(CastMatrix, StarIsNotCastable) {
  EXPECT_FALSE(CastValue(Value::Star(), TypeKind::kInt).ok());
  EXPECT_FALSE(CastValue(Value::Star(), TypeKind::kString).ok());
}

TEST(CastMatrix, StringToIntStrictVsLenient) {
  EXPECT_EQ(CastValue(Value::Str("12"), TypeKind::kInt, Strict())->int_value(), 12);
  EXPECT_FALSE(CastValue(Value::Str("12abc"), TypeKind::kInt, Strict()).ok());
  // MySQL-style prefix parse.
  EXPECT_EQ(CastValue(Value::Str("12abc"), TypeKind::kInt, Lenient())->int_value(), 12);
  EXPECT_EQ(CastValue(Value::Str("abc"), TypeKind::kInt, Lenient())->int_value(), 0);
  EXPECT_EQ(CastValue(Value::Str("-7"), TypeKind::kInt, Lenient())->int_value(), -7);
}

TEST(CastMatrix, DoubleToIntRangeChecked) {
  EXPECT_EQ(CastValue(Value::DoubleVal(1.9), TypeKind::kInt)->int_value(), 1);
  EXPECT_FALSE(CastValue(Value::DoubleVal(1e19), TypeKind::kInt).ok());
  EXPECT_FALSE(CastValue(Value::DoubleVal(0.0 / 0.0), TypeKind::kInt).ok());
}

TEST(CastMatrix, StringToDateLenientGivesNull) {
  const Result<Value> bad = CastValue(Value::Str("not-a-date"), TypeKind::kDate,
                                      Lenient());
  ASSERT_TRUE(bad.ok());
  EXPECT_TRUE(bad->is_null());
  EXPECT_FALSE(CastValue(Value::Str("not-a-date"), TypeKind::kDate, Strict()).ok());
  EXPECT_EQ(CastValue(Value::Str("2024-06-15"), TypeKind::kDate)->date_value().month, 6);
}

TEST(CastMatrix, IntToDateYyyymmdd) {
  const Result<Value> d = CastValue(Value::Int(20240615), TypeKind::kDate);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->date_value().day, 15);
  EXPECT_TRUE(CastValue(Value::Int(3), TypeKind::kDate, Lenient())->is_null());
}

TEST(CastMatrix, JsonDepthLimited) {
  CastOptions opt;
  opt.json_depth_limit = 4;
  const Result<Value> shallow = CastValue(Value::Str("[[1]]"), TypeKind::kJson, opt);
  EXPECT_TRUE(shallow.ok());
  const Result<Value> deep = CastValue(Value::Str("[[[[[[1]]]]]]"), TypeKind::kJson, opt);
  ASSERT_FALSE(deep.ok());
  EXPECT_EQ(deep.status().code(), StatusCode::kResourceExhausted);
}

TEST(CastMatrix, BlobConversions) {
  EXPECT_EQ(CastValue(Value::Str("ab"), TypeKind::kBlob)->blob_value(), "ab");
  const Value inet = *CastValue(Value::Str("1.2.3.4"), TypeKind::kInet);
  EXPECT_EQ(CastValue(inet, TypeKind::kBlob)->blob_value().size(), 4u);
  const Value geo = *CastValue(Value::Str("POINT(1 2)"), TypeKind::kGeometry);
  const Value blob = *CastValue(geo, TypeKind::kBlob);
  // Geometry → blob → geometry round-trips.
  EXPECT_EQ(CastValue(blob, TypeKind::kGeometry)->geometry_value(),
            geo.geometry_value());
}

TEST(CastMatrix, BoolText) {
  EXPECT_TRUE(CastValue(Value::Str("true"), TypeKind::kBool)->bool_value());
  EXPECT_FALSE(CastValue(Value::Str("off"), TypeKind::kBool)->bool_value());
  EXPECT_FALSE(CastValue(Value::Str("maybe"), TypeKind::kBool, Strict()).ok());
}

TEST(CoerceValue, StrictRefusesImplicitStringToNumeric) {
  EXPECT_FALSE(CoerceValue(Value::Str("1"), TypeKind::kInt, Strict()).ok());
  EXPECT_TRUE(CoerceValue(Value::Str("1"), TypeKind::kInt, Lenient()).ok());
  // Explicit CastValue is allowed even in strict mode.
  EXPECT_TRUE(CastValue(Value::Str("1"), TypeKind::kInt, Strict()).ok());
}

TEST(CommonSuperType, Lattice) {
  EXPECT_EQ(*CommonSuperType(TypeKind::kInt, TypeKind::kDouble), TypeKind::kDouble);
  EXPECT_EQ(*CommonSuperType(TypeKind::kInt, TypeKind::kDecimal), TypeKind::kDecimal);
  EXPECT_EQ(*CommonSuperType(TypeKind::kDate, TypeKind::kDateTime),
            TypeKind::kDateTime);
  EXPECT_EQ(*CommonSuperType(TypeKind::kInt, TypeKind::kString), TypeKind::kString);
  EXPECT_EQ(*CommonSuperType(TypeKind::kNull, TypeKind::kJson), TypeKind::kJson);
  EXPECT_FALSE(CommonSuperType(TypeKind::kRow, TypeKind::kInt).ok());
  EXPECT_FALSE(CommonSuperType(TypeKind::kArray, TypeKind::kString).ok());
}

TEST(TypeNames, ParseAliases) {
  EXPECT_EQ(*ParseTypeName("BIGINT"), TypeKind::kInt);
  EXPECT_EQ(*ParseTypeName("varchar(255)"), TypeKind::kString);
  EXPECT_EQ(*ParseTypeName("Decimal256(45)"), TypeKind::kDecimal);
  EXPECT_EQ(*ParseTypeName("NUMERIC(10,2)"), TypeKind::kDecimal);
  EXPECT_EQ(*ParseTypeName("bytea"), TypeKind::kBlob);
  EXPECT_EQ(*ParseTypeName("TIMESTAMP"), TypeKind::kDateTime);
  EXPECT_FALSE(ParseTypeName("NO_SUCH_TYPE").has_value());
}

}  // namespace
}  // namespace soft
