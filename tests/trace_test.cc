// Causal span tracing and the crash flight recorder (docs/OBSERVABILITY.md):
//
//  * Span IDs are a pure function of (dialect, shard, kind, ordinal) — never
//    of wall clock or randomness — so two runs of the same campaign produce
//    the identical span tree modulo timestamps.
//  * Tracing is strictly observational: the outcome digest is bit-identical
//    with tracing on and off, in simulated and real-crash mode alike.
//  * The --trace-sample knob thins statement spans without touching the
//    structural campaign/shard/worker-run spans.
//  * Real-crash campaigns flush a bounded flight ring per worker death; an
//    announced crash's last ring entry is the crashing statement itself.
//  * The Chrome trace-event export is well-formed (deep validation lives in
//    tools/check_trace_json.py, wired as TraceLint.ChromeTraceValidates).
//
// NOTE: the RealCrash* tests fork. Keep them out of the TSan lane
// (`ctest -R 'Parallel|GoldenPoc|Telemetry'`); the ASan CI jobs run them.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "src/dialects/dialects.h"
#include "src/soft/chaos.h"
#include "src/soft/soft_fuzzer.h"
#include "src/soft/worker.h"
#include "src/telemetry/journal.h"
#include "src/telemetry/trace.h"

#ifndef SOFT_GOLDEN_DIR
#error "SOFT_GOLDEN_DIR must be defined to the tests/golden directory"
#endif

namespace soft {
namespace {

CampaignOptions SmallCampaign(int budget, bool traced, bool real) {
  CampaignOptions options;
  options.seed = 7;
  options.max_statements = budget;
  options.trace_sample = traced ? 1 : 0;
  options.crash_realism = real ? CrashRealism::kReal : CrashRealism::kSimulated;
  return options;
}

// The time-free shape of a span: everything the determinism contract covers.
using SpanShape =
    std::tuple<uint64_t, uint64_t, trace::SpanKind, int,
               std::vector<std::pair<std::string, std::string>>>;

std::vector<SpanShape> Shapes(const trace::TraceData& data) {
  std::vector<SpanShape> shapes;
  shapes.reserve(data.spans.size());
  for (const trace::TraceSpan& span : data.spans) {
    shapes.emplace_back(span.id, span.parent_id, span.kind, span.shard, span.args);
  }
  return shapes;
}

const trace::TraceSpan* FindSpan(const trace::TraceData& data, uint64_t id) {
  for (const trace::TraceSpan& span : data.spans) {
    if (span.id == id) {
      return &span;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Span identity
// ---------------------------------------------------------------------------

TEST(TraceSpanId, IsDeterministicAndCollisionResistant) {
  const uint64_t id = trace::SpanId("duckdb", 0, trace::SpanKind::kStatement, 5);
  EXPECT_EQ(id, trace::SpanId("duckdb", 0, trace::SpanKind::kStatement, 5));
  EXPECT_NE(id, 0u);  // 0 is reserved for "no parent"

  std::set<uint64_t> ids;
  for (const char* dialect : {"duckdb", "mariadb", "virtuoso"}) {
    for (int shard = -1; shard < 3; ++shard) {
      for (const trace::SpanKind kind :
           {trace::SpanKind::kCampaign, trace::SpanKind::kShard,
            trace::SpanKind::kWorkerRun, trace::SpanKind::kStatement,
            trace::SpanKind::kParse, trace::SpanKind::kOptimize,
            trace::SpanKind::kExecute}) {
        for (int ordinal = 0; ordinal < 50; ++ordinal) {
          EXPECT_TRUE(ids.insert(trace::SpanId(dialect, shard, kind, ordinal)).second)
              << dialect << " shard=" << shard << " ordinal=" << ordinal;
        }
      }
    }
  }
}

TEST(TraceSpanId, KindNamesAndStageMapping) {
  EXPECT_EQ(trace::SpanKindName(trace::SpanKind::kCampaign), "campaign");
  EXPECT_EQ(trace::SpanKindName(trace::SpanKind::kStatement), "statement");
  EXPECT_EQ(trace::StageSpanKind(Stage::kParse), trace::SpanKind::kParse);
  EXPECT_EQ(trace::StageSpanKind(Stage::kOptimize), trace::SpanKind::kOptimize);
  EXPECT_EQ(trace::StageSpanKind(Stage::kExecute), trace::SpanKind::kExecute);
}

// ---------------------------------------------------------------------------
// Structural spans and determinism (simulated, in-process)
// ---------------------------------------------------------------------------

TEST(TraceStructure, ShardedCampaignBuildsTheCausalTree) {
  const CampaignResult result =
      RunShardedSoftCampaign("duckdb", SmallCampaign(600, true, false), 2);
  ASSERT_FALSE(result.trace.empty());

  const uint64_t campaign_id =
      trace::SpanId("duckdb", -1, trace::SpanKind::kCampaign, 0);
  const trace::TraceSpan* root = FindSpan(result.trace, campaign_id);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(result.trace.spans.front().id, campaign_id);  // root listed first

  int shard_spans = 0;
  int run_spans = 0;
  int statement_spans = 0;
  for (const trace::TraceSpan& span : result.trace.spans) {
    switch (span.kind) {
      case trace::SpanKind::kShard:
        ++shard_spans;
        EXPECT_EQ(span.parent_id, campaign_id);
        break;
      case trace::SpanKind::kWorkerRun: {
        ++run_spans;
        const trace::TraceSpan* parent = FindSpan(result.trace, span.parent_id);
        ASSERT_NE(parent, nullptr);
        EXPECT_EQ(parent->kind, trace::SpanKind::kShard);
        break;
      }
      case trace::SpanKind::kStatement: {
        ++statement_spans;
        const trace::TraceSpan* parent = FindSpan(result.trace, span.parent_id);
        ASSERT_NE(parent, nullptr);
        EXPECT_EQ(parent->kind, trace::SpanKind::kWorkerRun);
        break;
      }
      default:
        break;
    }
  }
  EXPECT_EQ(shard_spans, 2);
  EXPECT_EQ(run_spans, 2);  // one synthetic in-process run per shard
#ifdef SOFT_TELEMETRY_ENABLED
  EXPECT_EQ(statement_spans, result.statements_executed);
#else
  EXPECT_EQ(statement_spans, 0);  // hooks compiled out: structure only
#endif
}

TEST(TraceStructure, SpanShapesAreIdenticalAcrossRuns) {
  const CampaignResult a =
      RunShardedSoftCampaign("mariadb", SmallCampaign(500, true, false), 2);
  const CampaignResult b =
      RunShardedSoftCampaign("mariadb", SmallCampaign(500, true, false), 2);
  EXPECT_EQ(Shapes(a.trace), Shapes(b.trace));
}

TEST(TraceStructure, TracingNeverPerturbsTheOutcomeDigest) {
  const CampaignResult traced =
      RunShardedSoftCampaign("duckdb", SmallCampaign(800, true, false), 2);
  const CampaignResult plain =
      RunShardedSoftCampaign("duckdb", SmallCampaign(800, false, false), 2);
  EXPECT_EQ(DigestCampaignResult(traced), DigestCampaignResult(plain));
  EXPECT_TRUE(plain.trace.empty());
  EXPECT_EQ(traced.unique_bugs.size(), plain.unique_bugs.size());
}

#ifdef SOFT_TELEMETRY_ENABLED
TEST(TraceStructure, SampleKnobThinsStatementSpans) {
  const CampaignOptions every = SmallCampaign(400, true, false);
  CampaignOptions fifth = every;
  fifth.trace_sample = 5;
  const CampaignResult dense = RunShardedSoftCampaign("virtuoso", every, 1);
  const CampaignResult sparse = RunShardedSoftCampaign("virtuoso", fifth, 1);

  auto count_statements = [](const CampaignResult& r) {
    int n = 0;
    for (const trace::TraceSpan& span : r.trace.spans) {
      n += span.kind == trace::SpanKind::kStatement ? 1 : 0;
    }
    return n;
  };
  const int dense_count = count_statements(dense);
  const int sparse_count = count_statements(sparse);
  EXPECT_EQ(dense_count, dense.statements_executed);
  // Every 5th statement, first always included: ceil(n / 5).
  EXPECT_EQ(sparse_count, (sparse.statements_executed + 4) / 5);
  EXPECT_EQ(DigestCampaignResult(dense), DigestCampaignResult(sparse));
}

TEST(TraceStructure, StageSpansNestInsideTheirStatement) {
  const CampaignResult result =
      RunShardedSoftCampaign("duckdb", SmallCampaign(200, true, false), 1);
  std::map<uint64_t, const trace::TraceSpan*> by_id;
  for (const trace::TraceSpan& span : result.trace.spans) {
    by_id[span.id] = &span;
  }
  int stage_spans = 0;
  for (const trace::TraceSpan& span : result.trace.spans) {
    if (span.kind != trace::SpanKind::kParse &&
        span.kind != trace::SpanKind::kOptimize &&
        span.kind != trace::SpanKind::kExecute) {
      continue;
    }
    ++stage_spans;
    const auto parent = by_id.find(span.parent_id);
    ASSERT_NE(parent, by_id.end());
    EXPECT_EQ(parent->second->kind, trace::SpanKind::kStatement);
    EXPECT_GE(span.start_ns, parent->second->start_ns);
    EXPECT_LE(span.start_ns + span.dur_ns,
              parent->second->start_ns + parent->second->dur_ns);
  }
  EXPECT_GT(stage_spans, 0);
}
#endif  // SOFT_TELEMETRY_ENABLED

// ---------------------------------------------------------------------------
// Real-crash mode: digest parity, flight recorder (these fork)
// ---------------------------------------------------------------------------

TEST(RealCrashTrace, DigestMatchesSimulatedAndUntraced) {
  const CampaignResult traced_real =
      RunShardedSoftCampaign("duckdb", SmallCampaign(800, true, true), 1);
  const CampaignResult plain_real =
      RunShardedSoftCampaign("duckdb", SmallCampaign(800, false, true), 1);
  const CampaignResult plain_sim =
      RunShardedSoftCampaign("duckdb", SmallCampaign(800, false, false), 1);
  EXPECT_EQ(DigestCampaignResult(traced_real), DigestCampaignResult(plain_real));
  EXPECT_EQ(DigestCampaignResult(traced_real), DigestCampaignResult(plain_sim));
}

TEST(RealCrashTrace, WorkerRunSpansCarryVerdicts) {
  const CampaignResult result =
      RunShardedSoftCampaign("duckdb", SmallCampaign(800, true, true), 1);
  int crashed_runs = 0;
  int completed_runs = 0;
  for (const trace::TraceSpan& span : result.trace.spans) {
    if (span.kind != trace::SpanKind::kWorkerRun) {
      continue;
    }
    std::string verdict;
    for (const auto& [key, value] : span.args) {
      if (key == "verdict") {
        verdict = value;
      }
    }
    crashed_runs += verdict == "crashed" ? 1 : 0;
    completed_runs += verdict == "completed" ? 1 : 0;
  }
  EXPECT_EQ(crashed_runs, result.crashes_observed);
  EXPECT_EQ(completed_runs, 1);  // the final, completing worker
}

TEST(RealCrashFlight, EveryAnnouncedCrashFlushesTheRing) {
  const CampaignResult result =
      RunShardedSoftCampaign("duckdb", SmallCampaign(2000, false, true), 1);
  ASSERT_FALSE(result.unique_bugs.empty());
  ASSERT_FALSE(result.crash_flights.empty());
  EXPECT_EQ(static_cast<int>(result.crash_flights.size()), result.crashes_observed);

  for (const trace::CrashFlightRecord& flight : result.crash_flights) {
    EXPECT_TRUE(flight.announced);
    EXPECT_LE(flight.entries.size(), trace::kFlightRingCapacity);
#ifdef SOFT_TELEMETRY_ENABLED
    ASSERT_FALSE(flight.entries.empty());
    const trace::FlightEntry& last = flight.entries.back();
    EXPECT_EQ(last.outcome, "crash");
    EXPECT_FALSE(last.sql.empty());
#endif
  }

#ifdef SOFT_TELEMETRY_ENABLED
  // Acceptance: each unique bug's first real crash is on the record — some
  // flight with its bug_id ends in exactly its PoC statement.
  for (const FoundBug& bug : result.unique_bugs) {
    bool witnessed = false;
    for (const trace::CrashFlightRecord& flight : result.crash_flights) {
      if (flight.bug_id == bug.crash.bug_id && !flight.entries.empty() &&
          flight.entries.back().sql == bug.poc_sql) {
        witnessed = true;
        break;
      }
    }
    EXPECT_TRUE(witnessed) << "bug " << bug.crash.bug_id
                           << " has no flight ending in its PoC: " << bug.poc_sql;
  }
#endif
}

// One golden PoC per line: "<bug_id>\t<crash type>\t<sql>" (tests/golden/).
struct GoldenPoc {
  int bug_id = 0;
  std::string sql;
};

std::vector<GoldenPoc> LoadGoldenPocs(const std::string& dialect) {
  const std::string path =
      std::string(SOFT_GOLDEN_DIR) + "/pocs_" + dialect + ".txt";
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing golden corpus: " << path;
  std::vector<GoldenPoc> pocs;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const size_t first_tab = line.find('\t');
    const size_t second_tab = line.find('\t', first_tab + 1);
    if (second_tab == std::string::npos) {
      continue;
    }
    pocs.push_back({std::stoi(line.substr(0, first_tab)), line.substr(second_tab + 1)});
  }
  return pocs;
}

// Minimal fuzzer replaying a fixed statement list with the flight recorder
// installed — the shape a real campaign loop has, without the generator.
class GoldenReplayFuzzer : public Fuzzer {
 public:
  explicit GoldenReplayFuzzer(std::vector<std::string> script)
      : script_(std::move(script)) {}
  std::string name() const override { return "golden-replay"; }

  CampaignResult Run(Database& db, const CampaignOptions& options) override {
    const trace::ScopedFlightRecorder flight(options.crash_realism ==
                                             CrashRealism::kReal);
    CampaignResult result;
    result.tool = name();
    result.dialect = db.config().name;
    std::set<int> found;
    for (const std::string& sql : script_) {
      if (result.statements_executed >= options.max_statements) {
        break;
      }
      trace::FlightBeginStatement(result.statements_executed + 1, "golden", sql);
      const StatementResult r = db.Execute(sql);
      ++result.statements_executed;
      std::string_view outcome = "ok";
      if (r.crashed()) {
        outcome = "crash";
        ++result.crashes_observed;
        if (found.insert(r.crash->bug_id).second) {
          FoundBug bug;
          bug.crash = *r.crash;
          bug.poc_sql = sql;
          bug.found_by = name();
          bug.statements_until_found = result.statements_executed;
          result.unique_bugs.push_back(std::move(bug));
        }
      } else if (!r.ok()) {
        ++result.sql_errors;
        outcome = "sql_error";
      }
      trace::FlightEndStatement(outcome);
    }
    return result;
  }

 private:
  std::vector<std::string> script_;
};

// The acceptance bar: every golden-corpus bug, realized as a real signal in
// a forked worker, leaves a crash_flight record whose final ring entry is
// the exact crashing statement.
TEST(RealCrashFlight, EveryGoldenCorpusBugLeavesItsPocOnTheRecord) {
  for (const std::string& dialect : AllDialectNames()) {
    SCOPED_TRACE(dialect);
    const std::vector<GoldenPoc> pocs = LoadGoldenPocs(dialect);
    ASSERT_FALSE(pocs.empty());
    std::vector<std::string> script;
    script.reserve(pocs.size());
    for (const GoldenPoc& poc : pocs) {
      script.push_back(poc.sql);
    }
    CampaignOptions options;
    options.max_statements = static_cast<int>(script.size());
    options.crash_realism = CrashRealism::kReal;
    const WorkerShardOutcome outcome = RunShardInWorkerProcess(
        [&script] { return std::make_unique<GoldenReplayFuzzer>(script); },
        [&dialect] { return MakeDialect(dialect); }, options);

    ASSERT_EQ(outcome.result.unique_bugs.size(), pocs.size());
    ASSERT_EQ(outcome.result.crash_flights.size(), pocs.size());
#ifdef SOFT_TELEMETRY_ENABLED
    for (const FoundBug& bug : outcome.result.unique_bugs) {
      bool witnessed = false;
      for (const trace::CrashFlightRecord& flight : outcome.result.crash_flights) {
        if (flight.announced && flight.bug_id == bug.crash.bug_id &&
            !flight.entries.empty() && flight.entries.back().sql == bug.poc_sql &&
            flight.entries.back().outcome == "crash") {
          witnessed = true;
          break;
        }
      }
      EXPECT_TRUE(witnessed) << "bug " << bug.crash.bug_id
                             << " has no flight ending in its PoC: " << bug.poc_sql;
    }
#endif
  }
}

TEST(RealCrashFlight, RecordsSurviveTheJournalRoundTrip) {
  const CampaignResult result =
      RunShardedSoftCampaign("duckdb", SmallCampaign(1500, false, true), 1);
  ASSERT_FALSE(result.crash_flights.empty());

  std::stringstream journal;
  CampaignOptions options = SmallCampaign(1500, false, true);
  telemetry::WriteCampaignJournal(journal, options, result, 0);
  const Result<telemetry::JournalReplay> replay = telemetry::ReplayJournal(journal);
  ASSERT_TRUE(replay.ok()) << replay.status().message();
  ASSERT_EQ(replay->crash_flights.size(), result.crash_flights.size());
  for (size_t i = 0; i < result.crash_flights.size(); ++i) {
    const trace::CrashFlightRecord& want = result.crash_flights[i];
    const trace::CrashFlightRecord& got = replay->crash_flights[i];
    EXPECT_EQ(got.shard, want.shard);
    EXPECT_EQ(got.worker_run, want.worker_run);
    EXPECT_EQ(got.announced, want.announced);
    EXPECT_EQ(got.bug_id, want.bug_id);
    EXPECT_EQ(got.last_checkpoint_cases, want.last_checkpoint_cases);
    ASSERT_EQ(got.entries.size(), want.entries.size());
    for (size_t j = 0; j < want.entries.size(); ++j) {
      EXPECT_EQ(got.entries[j].statement_index, want.entries[j].statement_index);
      EXPECT_EQ(got.entries[j].pattern, want.entries[j].pattern);
      EXPECT_EQ(got.entries[j].sql, want.entries[j].sql);
      EXPECT_EQ(got.entries[j].stage_reached, want.entries[j].stage_reached);
      EXPECT_EQ(got.entries[j].outcome, want.entries[j].outcome);
    }
  }
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

TEST(TraceExport, ChromeFileIsWellFormed) {
  const CampaignResult result =
      RunShardedSoftCampaign("mariadb", SmallCampaign(300, true, false), 2);
  const std::string path = ::testing::TempDir() + "/trace_export_test.json";
  const Status wrote = telemetry::WriteChromeTraceFile(path, result);
  ASSERT_TRUE(wrote.ok()) << wrote.message();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  // One X event per span, each with its span_id arg.
  size_t x_events = 0;
  for (size_t pos = json.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"X\"", pos + 1)) {
    ++x_events;
  }
  EXPECT_EQ(x_events, result.trace.spans.size());
  EXPECT_NE(json.find("\"span_id\":\"0x"), std::string::npos);
}

TEST(TraceExport, EmptyTraceStillWritesLoadableFile) {
  CampaignResult result;
  result.dialect = "duckdb";
  const std::string path = ::testing::TempDir() + "/trace_export_empty.json";
  const Status wrote = telemetry::WriteChromeTraceFile(path, result);
  ASSERT_TRUE(wrote.ok()) << wrote.message();
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"traceEvents\""), std::string::npos);
}

}  // namespace
}  // namespace soft
