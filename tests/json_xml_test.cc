// JSON substrate tests: depth accounting is the CVE-2015-5289 surface.
#include <gtest/gtest.h>

#include "src/sqlvalue/json.h"

namespace soft {
namespace {

JsonPtr Parse(const std::string& text, int max_depth = 512) {
  Result<JsonParseResult> r = ParseJson(text, max_depth);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? r->value : JsonPtr();
}

TEST(JsonParse, Scalars) {
  EXPECT_EQ(Parse("null")->kind(), JsonKind::kNull);
  EXPECT_EQ(Parse("true")->bool_value(), true);
  EXPECT_EQ(Parse("false")->bool_value(), false);
  EXPECT_DOUBLE_EQ(Parse("1.5")->number_value(), 1.5);
  EXPECT_DOUBLE_EQ(Parse("-3e2")->number_value(), -300.0);
  EXPECT_EQ(Parse("\"hi\"")->string_value(), "hi");
}

TEST(JsonParse, Containers) {
  const JsonPtr arr = Parse("[1, [2, 3], {\"a\": 4}]");
  ASSERT_EQ(arr->kind(), JsonKind::kArray);
  EXPECT_EQ(arr->array_items().size(), 3u);
  const JsonPtr obj = Parse("{\"x\": 1, \"y\": [true]}");
  ASSERT_EQ(obj->kind(), JsonKind::kObject);
  EXPECT_EQ(obj->object_members().size(), 2u);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(Parse("\"a\\nb\"")->string_value(), "a\nb");
  EXPECT_EQ(Parse("\"q\\\"q\"")->string_value(), "q\"q");
  EXPECT_EQ(Parse("\"\\u0041\"")->string_value(), "A");
}

TEST(JsonParse, Malformed) {
  EXPECT_FALSE(ParseJson("[1,").ok());
  EXPECT_FALSE(ParseJson("{\"a\": }").ok());
  EXPECT_FALSE(ParseJson("{a: 1}").ok());
  EXPECT_FALSE(ParseJson("[1] trailing").ok());
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
}

TEST(JsonDepth, TrackedWhileParsing) {
  Result<JsonParseResult> r = ParseJson("[[[1]]]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->max_depth, 4);        // three arrays + the scalar level
  EXPECT_EQ(r->value->Depth(), 4);   // Depth() counts the scalar level too
}

TEST(JsonDepth, LimitIsResourceError) {
  // The CVE-2015-5289 shape: REPEAT('[', N) — here well-formed deep arrays.
  std::string deep;
  for (int i = 0; i < 600; ++i) {
    deep += "[";
  }
  deep += "1";
  for (int i = 0; i < 600; ++i) {
    deep += "]";
  }
  const Result<JsonParseResult> r = ParseJson(deep, 512);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  // A generous limit accepts it.
  EXPECT_TRUE(ParseJson(deep, 1000).ok());
}

TEST(JsonDepth, ProbeCountsUnmatchedOpeners) {
  EXPECT_EQ(ProbeJsonNestingDepth("[[["), 3);
  EXPECT_EQ(ProbeJsonNestingDepth("[1,[1,[1,"), 3);
  EXPECT_EQ(ProbeJsonNestingDepth("[]"), 1);
  EXPECT_EQ(ProbeJsonNestingDepth("\"[[[\""), 0);  // brackets inside strings
  std::string repeat_poc;
  for (int i = 0; i < 100; ++i) {
    repeat_poc += "[1,";
  }
  EXPECT_EQ(ProbeJsonNestingDepth(repeat_poc), 100);  // the Case 5 input
}

TEST(JsonSerialize, RoundTrips) {
  for (const std::string& text :
       {"null", "true", "[1,2,3]", "{\"a\":1,\"b\":[false,null]}", "\"x\\\"y\""}) {
    const JsonPtr doc = Parse(text);
    EXPECT_EQ(Parse(doc->Serialize())->Serialize(), doc->Serialize()) << text;
  }
}

TEST(JsonPath, Resolution) {
  const JsonPtr doc = Parse("{\"a\": [10, {\"b\": 20}]}");
  Result<JsonPtr> hit = EvalJsonPath(doc, "$.a[1].b");
  ASSERT_TRUE(hit.ok());
  ASSERT_NE(*hit, nullptr);
  EXPECT_DOUBLE_EQ((*hit)->number_value(), 20);

  hit = EvalJsonPath(doc, "$.missing");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, nullptr);

  hit = EvalJsonPath(doc, "$.a[9]");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, nullptr);

  EXPECT_FALSE(EvalJsonPath(doc, "a.b").ok());    // must start with $
  EXPECT_FALSE(EvalJsonPath(doc, "$.a[x]").ok()); // malformed index
}

}  // namespace
}  // namespace soft
