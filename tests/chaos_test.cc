// Chaos campaign oracles (src/soft/chaos.h): every registered failpoint,
// when armed, degrades the harness exactly the way its SiteClass promises —
// clean Status, no crash, campaign outcomes bit-identical wherever the fault
// is retried or absorbed.
//
// These tests fork (worker sites, kReal campaigns): keep them out of the
// TSan lane like the worker harness tests (tests/CMakeLists.txt). The ASan
// chaos CI lane runs them plus `find_bugs --chaos=enumerate`.
#include <gtest/gtest.h>

#include <string>

#include "src/failpoint/failpoint.h"
#include "src/soft/chaos.h"
#include "src/soft/soft_fuzzer.h"
#include "src/telemetry/telemetry.h"

namespace soft {
namespace {

constexpr char kDialect[] = "mariadb";
constexpr int kBudget = 300;

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }
};

CampaignOptions ChaosOptions(int budget) {
  CampaignOptions options;
  options.seed = 42;
  options.max_statements = budget;
  return options;
}

TEST_F(ChaosTest, DigestIsStableAndSensitive) {
  const CampaignResult a = RunShardedSoftCampaign(kDialect, ChaosOptions(kBudget), 1);
  const CampaignResult b = RunShardedSoftCampaign(kDialect, ChaosOptions(kBudget), 1);
  EXPECT_EQ(DigestCampaignResult(a), DigestCampaignResult(b));

  CampaignOptions other = ChaosOptions(kBudget);
  other.seed = 43;
  const CampaignResult c = RunShardedSoftCampaign(kDialect, other, 1);
  EXPECT_NE(DigestCampaignResult(a), DigestCampaignResult(c));

  // journal_degraded is deliberately outside the digest: it is the one field
  // degrade-class injections are allowed to change.
  CampaignResult degraded = a;
  degraded.journal_degraded = true;
  EXPECT_EQ(DigestCampaignResult(a), DigestCampaignResult(degraded));
}

TEST_F(ChaosTest, EnumerationOracleHoldsForInProcessSites) {
  const ChaosReport report =
      RunChaosEnumeration(kDialect, kBudget, /*include_worker_sites=*/false);
  if (!report.compiled_in) {
    EXPECT_TRUE(report.outcomes.empty());
    EXPECT_TRUE(report.ok());
    GTEST_SKIP() << "failpoints compiled out";
  }
  EXPECT_EQ(report.outcomes.size(), failpoint::kInventory.size());
  for (const ChaosSiteOutcome& outcome : report.outcomes) {
    EXPECT_TRUE(outcome.ok) << outcome.failpoint << " [" << outcome.site_class
                            << "]: " << outcome.detail;
  }
  // Worker sites were skipped and fleet sites delegated (their oracles run
  // in soft::fleet::RunFleetChaosEnumeration); everything else actually ran.
  for (const ChaosSiteOutcome& outcome : report.outcomes) {
    const bool worker_site = outcome.failpoint.rfind("worker.", 0) == 0;
    const bool fleet_site = outcome.failpoint.rfind("fleet.", 0) == 0;
    EXPECT_EQ(outcome.ran, !worker_site && !fleet_site) << outcome.failpoint;
    if (fleet_site) {
      EXPECT_NE(outcome.detail.find("RunFleetChaosEnumeration"), std::string::npos)
          << outcome.failpoint;
    }
  }
}

TEST_F(ChaosTest, WorkerSitesHoldUnderForkedCampaigns) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  // The worker.* slice of the enumeration, exercised through real forked
  // campaigns (the part EnumerationOracleHoldsForInProcessSites skips).
  const ChaosReport report =
      RunChaosEnumeration(kDialect, kBudget, /*include_worker_sites=*/true);
  for (const ChaosSiteOutcome& outcome : report.outcomes) {
    if (outcome.failpoint.rfind("worker.", 0) != 0) {
      continue;
    }
    EXPECT_TRUE(outcome.ran) << outcome.failpoint;
    EXPECT_TRUE(outcome.ok) << outcome.failpoint << ": " << outcome.detail;
  }
}

TEST_F(ChaosTest, ShardedCampaignBitIdenticalUnderInjectedWorkerFaults) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  // K=2 real-crash campaign with transient worker faults armed vs the K=2
  // uninjected simulated reference: retried/absorbed faults must leave the
  // merged result bit-identical — regardless of which shard drew the fault.
  telemetry::SetRuntimeEnabled(false);
  const CampaignResult reference =
      RunShardedSoftCampaign(kDialect, ChaosOptions(600), /*shards=*/2);

  ASSERT_TRUE(failpoint::ArmFromSpec(
                  "worker.fork=after:0:2,worker.pipe_write=after:0:3,"
                  "worker.pipe_read=after:0:3")
                  .ok());
  CampaignOptions real = ChaosOptions(600);
  real.crash_realism = CrashRealism::kReal;
  const CampaignResult injected =
      RunShardedSoftCampaign(kDialect, real, /*shards=*/2);
  failpoint::DisarmAll();
  telemetry::SetRuntimeEnabled(true);

  EXPECT_EQ(DigestCampaignResult(injected), DigestCampaignResult(reference));
  EXPECT_FALSE(injected.journal_degraded);
}

TEST_F(ChaosTest, SinkLossLatchesDegradedWithoutChangingTheOutcome) {
  // No failpoint involved: the bool-returning sink contract alone must
  // degrade gracefully, so this holds in -DSOFT_FAILPOINTS=OFF builds too.
  CampaignOptions baseline_options = ChaosOptions(kBudget);
  baseline_options.checkpoint_every = 25;
  int baseline_calls = 0;
  baseline_options.checkpoint_sink = [&baseline_calls](const CampaignCheckpoint&) {
    ++baseline_calls;
    return true;
  };
  const CampaignResult baseline =
      RunShardedSoftCampaign(kDialect, baseline_options, 1);
  ASSERT_GT(baseline_calls, 3);
  EXPECT_FALSE(baseline.journal_degraded);

  // The sink dies on its third call: the campaign must stop calling it,
  // latch journal_degraded, and finish with the identical outcome.
  CampaignOptions lossy_options = ChaosOptions(kBudget);
  lossy_options.checkpoint_every = 25;
  int lossy_calls = 0;
  lossy_options.checkpoint_sink = [&lossy_calls](const CampaignCheckpoint&) {
    ++lossy_calls;
    return lossy_calls < 3;
  };
  const CampaignResult lossy = RunShardedSoftCampaign(kDialect, lossy_options, 1);
  EXPECT_EQ(lossy_calls, 3);
  EXPECT_TRUE(lossy.journal_degraded);
  EXPECT_EQ(DigestCampaignResult(lossy), DigestCampaignResult(baseline));
}

}  // namespace
}  // namespace soft
