// Crash-realistic execution harness (docs/ROBUSTNESS.md): forked-worker
// supervision, the statement watchdog, and checkpoint/resume.
//
//  * Every CrashType round-trips through a real signal in a forked worker
//    back to the exact CrashInfo the simulated path reports.
//  * Real-crash campaigns are bit-identical to simulated campaigns for every
//    dialect, serial and sharded (the determinism contract excludes only
//    wall-clock quantities: found_wall_ns and the stage-latency histograms).
//  * The cooperative watchdog kills pathological statements within its
//    deadline; fuel and row budgets kill deterministically.
//  * Unannounced worker deaths back off and degrade to in-process simulated
//    execution without losing the campaign.
//  * A campaign killed with SIGKILL mid-run resumes from its streamed
//    journal to a bit-identical final result.
//
// NOTE: these tests fork. Keep them out of the TSan lane (`ctest -R
// 'Parallel|GoldenPoc|Telemetry'`); the ASan CI job runs them instead.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/dialects/dialects.h"
#include "src/soft/resume.h"
#include "src/soft/soft_fuzzer.h"
#include "src/soft/worker.h"
#include "src/telemetry/journal.h"
#include "src/util/rng.h"

namespace soft {
namespace {

// All eight Table 4 crash types.
const std::vector<CrashType> kAllCrashTypes = {
    CrashType::kNullPointerDereference, CrashType::kSegmentationViolation,
    CrashType::kUseAfterFree,           CrashType::kHeapBufferOverflow,
    CrashType::kGlobalBufferOverflow,   CrashType::kAssertionFailure,
    CrashType::kStackOverflow,          CrashType::kDivideByZero,
};

// A Database whose fault corpus has exactly one bug per CrashType, each
// triggered by a distinct marker string reaching UPPER.
std::unique_ptr<Database> MakeCrashMatrixDb() {
  EngineConfig config;
  config.name = "crashmatrix";
  auto db = std::make_unique<Database>(config);
  for (size_t i = 0; i < kAllCrashTypes.size(); ++i) {
    BugSpec spec;
    spec.id = 100 + static_cast<int>(i);
    spec.dbms = "crashmatrix";
    spec.function = "UPPER";
    spec.function_type = "string";
    spec.crash = kAllCrashTypes[i];
    spec.pattern = "P1.1";
    spec.stage = Stage::kExecute;
    spec.trigger = TriggerKind::kStringContains;
    spec.param_text = "marker" + std::to_string(i);
    spec.description = "crash matrix bug " + std::to_string(i);
    db->faults().AddBug(spec);
  }
  return db;
}

std::vector<std::string> CrashMatrixScript() {
  std::vector<std::string> script;
  for (size_t i = 0; i < kAllCrashTypes.size(); ++i) {
    script.push_back("SELECT UPPER('marker" + std::to_string(i) + "')");
  }
  script.push_back("SELECT UPPER('harmless')");
  return script;
}

// Minimal deterministic Fuzzer executing a fixed statement list; mirrors the
// counting/dedup/checkpoint conventions of the real execution loops.
class ScriptedFuzzer : public Fuzzer {
 public:
  explicit ScriptedFuzzer(std::vector<std::string> script) : script_(std::move(script)) {}
  std::string name() const override { return "scripted"; }

  CampaignResult Run(Database& db, const CampaignOptions& options) override {
    db.set_statement_limits(options.statement_limits);
    const Rng rng(options.seed);  // never advanced: a constant, seed-bound cursor
    CampaignResult result;
    result.tool = name();
    result.dialect = db.config().name;
    uint64_t dedup_digest = kDedupDigestSeed;
    std::set<int> found_ids;
    for (const std::string& sql : script_) {
      if (result.statements_executed >= options.max_statements) {
        break;
      }
      const StatementResult r = db.Execute(sql);
      ++result.statements_executed;
      if (r.crashed()) {
        ++result.crashes_observed;
        if (found_ids.insert(r.crash->bug_id).second) {
          FoundBug bug;
          bug.crash = *r.crash;
          bug.poc_sql = sql;
          bug.found_by = name();
          bug.statements_until_found = result.statements_executed;
          result.unique_bugs.push_back(std::move(bug));
          dedup_digest = DedupDigestStep(dedup_digest, r.crash->bug_id);
        }
      } else if (r.status.code() == StatusCode::kTimeout) {
        ++result.watchdog_timeouts;
      } else if (r.status.code() == StatusCode::kResourceExhausted) {
        ++result.false_positives;
      } else if (!r.ok()) {
        ++result.sql_errors;
      }
      if (options.checkpoint_every > 0 && options.checkpoint_sink &&
          result.statements_executed % options.checkpoint_every == 0) {
        options.checkpoint_sink(
            MakeCheckpoint(options, result, rng.StateFingerprint(), dedup_digest));
      }
    }
    result.functions_triggered = db.coverage().TriggeredFunctionCount();
    result.branches_covered = db.coverage().CoveredBranchCount();
    return result;
  }

 private:
  std::vector<std::string> script_;
};

// Bit-identical comparison under the determinism contract: everything except
// found_wall_ns and the (wall-clock) stage-latency histograms.
void ExpectSameCampaign(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.tool, b.tool);
  EXPECT_EQ(a.dialect, b.dialect);
  EXPECT_EQ(a.statements_executed, b.statements_executed);
  EXPECT_EQ(a.sql_errors, b.sql_errors);
  EXPECT_EQ(a.crashes_observed, b.crashes_observed);
  EXPECT_EQ(a.false_positives, b.false_positives);
  EXPECT_EQ(a.watchdog_timeouts, b.watchdog_timeouts);
  EXPECT_EQ(a.functions_triggered, b.functions_triggered);
  EXPECT_EQ(a.branches_covered, b.branches_covered);
  EXPECT_EQ(a.shards, b.shards);
  EXPECT_EQ(a.shard_statements, b.shard_statements);
  EXPECT_EQ(a.telemetry.patterns, b.telemetry.patterns);
  ASSERT_EQ(a.unique_bugs.size(), b.unique_bugs.size());
  for (size_t i = 0; i < a.unique_bugs.size(); ++i) {
    const FoundBug& x = a.unique_bugs[i];
    const FoundBug& y = b.unique_bugs[i];
    EXPECT_TRUE(x.crash == y.crash) << "bug " << i << ": " << x.crash.Summary()
                                    << " vs " << y.crash.Summary();
    EXPECT_EQ(x.poc_sql, y.poc_sql);
    EXPECT_EQ(x.found_by, y.found_by);
    EXPECT_EQ(x.statements_until_found, y.statements_until_found);
    EXPECT_EQ(x.shard, y.shard);
  }
}

// ---------------------------------------------------------------------------
// Crash round-trip through real signals
// ---------------------------------------------------------------------------

TEST(WorkerHarness, AllCrashTypesRoundTripToIdenticalCrashInfo) {
  const std::vector<std::string> script = CrashMatrixScript();
  CampaignOptions options;
  options.max_statements = 100;

  // Simulated reference, in-process.
  ScriptedFuzzer reference_fuzzer(script);
  auto reference_db = MakeCrashMatrixDb();
  const CampaignResult reference = reference_fuzzer.Run(*reference_db, options);
  ASSERT_EQ(reference.unique_bugs.size(), kAllCrashTypes.size());

  // Real crashes in forked workers.
  CampaignOptions real = options;
  real.crash_realism = CrashRealism::kReal;
  const WorkerShardOutcome outcome = RunShardInWorkerProcess(
      [&script] { return std::make_unique<ScriptedFuzzer>(script); },
      [] { return MakeCrashMatrixDb(); }, real);

  // One real signal per crash type, each announce matching the exit signal,
  // plus the final completing worker.
  EXPECT_EQ(outcome.stats.real_crashes, static_cast<int>(kAllCrashTypes.size()));
  EXPECT_EQ(outcome.stats.matched_signals, static_cast<int>(kAllCrashTypes.size()));
  EXPECT_EQ(outcome.stats.mismatched_signals, 0);
  EXPECT_EQ(outcome.stats.unexpected_deaths, 0);
  EXPECT_EQ(outcome.stats.forks, static_cast<int>(kAllCrashTypes.size()) + 1);
  EXPECT_FALSE(outcome.stats.degraded_to_simulated);

  ExpectSameCampaign(reference, outcome.result);
  EXPECT_EQ(outcome.coverage.CoveredBranchCount(), reference.branches_covered);
  EXPECT_EQ(outcome.coverage.TriggeredFunctionCount(), reference.functions_triggered);
}

TEST(WorkerHarness, ExpectedSignalCoversEveryCrashType) {
  for (const CrashType type : kAllCrashTypes) {
    const int sig = ExpectedSignalFor(type);
    EXPECT_TRUE(sig == SIGSEGV || sig == SIGABRT || sig == SIGFPE)
        << "unexpected signal " << sig << " for " << CrashTypeName(type);
  }
  EXPECT_EQ(ExpectedSignalFor(CrashType::kAssertionFailure), SIGABRT);
  EXPECT_EQ(ExpectedSignalFor(CrashType::kDivideByZero), SIGFPE);
  EXPECT_EQ(ExpectedSignalFor(CrashType::kStackOverflow), SIGSEGV);
  EXPECT_EQ(ExpectedSignalFor(CrashType::kNullPointerDereference), SIGSEGV);
}

// ---------------------------------------------------------------------------
// Sim/real bit-identity for full SOFT campaigns
// ---------------------------------------------------------------------------

class SimRealIdentityTest : public testing::TestWithParam<std::string> {};

TEST_P(SimRealIdentityTest, RealCrashCampaignMatchesSimulated) {
  const std::string& dialect = GetParam();
  CampaignOptions options;
  options.seed = 7;
  options.max_statements = 600;

  const CampaignResult sim1 = RunShardedSoftCampaign(dialect, options, 1);
  const CampaignResult sim3 = RunShardedSoftCampaign(dialect, options, 3);

  CampaignOptions real = options;
  real.crash_realism = CrashRealism::kReal;
  const CampaignResult real1 = RunShardedSoftCampaign(dialect, real, 1);
  const CampaignResult real3 = RunShardedSoftCampaign(dialect, real, 3);

  ExpectSameCampaign(sim1, real1);
  ExpectSameCampaign(sim3, real3);
  // Some dialects need bigger budgets before their first bug; the prolific
  // ones must actually exercise the real-signal path here (every CrashType's
  // real signal is separately covered by the crash-matrix round-trip test).
  if (dialect == "mariadb" || dialect == "monetdb" || dialect == "duckdb") {
    EXPECT_FALSE(real1.unique_bugs.empty()) << "campaign found nothing to realize";
  }
}

INSTANTIATE_TEST_SUITE_P(AllDialects, SimRealIdentityTest,
                         testing::ValuesIn(AllDialectNames()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// ---------------------------------------------------------------------------
// Statement watchdog
// ---------------------------------------------------------------------------

std::unique_ptr<Database> MakeRowTable(int rows) {
  auto db = std::make_unique<Database>();
  EXPECT_TRUE(db->Execute("CREATE TABLE t (a INT)").ok());
  std::string insert = "INSERT INTO t VALUES ";
  for (int i = 0; i < rows; ++i) {
    if (i > 0) {
      insert += ",";
    }
    insert += "(" + std::to_string(i) + ")";
  }
  EXPECT_TRUE(db->Execute(insert).ok());
  return db;
}

TEST(StatementWatchdog, DeadlineKillsPathologicalStatementWithinBudget) {
  auto db = MakeRowTable(2000);
  StatementLimits limits;
  limits.deadline_ms = 100;
  db->set_statement_limits(limits);

  // Quadratic: the scalar subquery re-runs its full scan for every outer row
  // (4M row steps) — far past the deadline without the watchdog.
  const auto start = std::chrono::steady_clock::now();
  const StatementResult r = db->Execute("SELECT (SELECT COUNT(*) FROM t) FROM t");
  const auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_EQ(r.status.code(), StatusCode::kTimeout) << r.status.ToString();
  EXPECT_FALSE(r.crashed());
  // Cooperative checks run every 256 watchdog ticks; generous slack for slow
  // (sanitizer) builds, but orders of magnitude under the unbounded runtime.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            5000);

  // The engine stays usable after a timeout.
  limits.deadline_ms = 0;
  db->set_statement_limits(limits);
  EXPECT_TRUE(db->Execute("SELECT COUNT(*) FROM t").ok());
}

TEST(StatementWatchdog, EvalFuelKillsDeterministically) {
  auto db = MakeRowTable(100);
  StatementLimits limits;
  limits.eval_fuel = 500;
  db->set_statement_limits(limits);

  const StatementResult r = db->Execute("SELECT (SELECT COUNT(*) FROM t) FROM t");
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted) << r.status.ToString();

  // Pure count budget: the same statement dies identically every time.
  const StatementResult again = db->Execute("SELECT (SELECT COUNT(*) FROM t) FROM t");
  EXPECT_EQ(again.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r.status.message(), again.status.message());

  // A statement within budget still succeeds.
  limits.eval_fuel = -1;
  db->set_statement_limits(limits);
  EXPECT_TRUE(db->Execute("SELECT COUNT(*) FROM t").ok());
}

TEST(StatementWatchdog, RowBudgetKillsWideMaterialization) {
  auto db = MakeRowTable(1000);
  StatementLimits limits;
  limits.max_rows = 100;
  db->set_statement_limits(limits);
  const StatementResult r = db->Execute("SELECT a FROM t");
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted) << r.status.ToString();

  limits.max_rows = 2000;
  db->set_statement_limits(limits);
  EXPECT_TRUE(db->Execute("SELECT a FROM t").ok());
}

TEST(StatementWatchdog, LikeBacktrackingBudgetIsBounded) {
  auto db = std::make_unique<Database>();
  // Exponential-backtracking shape: many '%'s that can never match the tail.
  std::string pattern(40, 'a');
  std::string like;
  for (int i = 0; i < 20; ++i) {
    like += "%a";
  }
  like += "b";
  const auto start = std::chrono::steady_clock::now();
  const StatementResult r =
      db->Execute("SELECT '" + pattern + "' LIKE '" + like + "'");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Either the matcher finishes within its step budget (false) or reports
  // exhaustion — it must never hang.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(), 30);
  if (!r.ok()) {
    EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted) << r.status.ToString();
  }
}

TEST(StatementWatchdog, CampaignCountsTimeoutsSeparately) {
  // A scripted campaign where one statement times out: it must surface in
  // watchdog_timeouts, not sql_errors or false_positives.
  auto make_db = [] { return MakeRowTable(2000); };
  std::vector<std::string> script = {
      "SELECT COUNT(*) FROM t",
      "SELECT (SELECT COUNT(*) FROM t) FROM t",
      "SELECT COUNT(*) FROM t",
  };
  ScriptedFuzzer fuzzer(script);
  CampaignOptions options;
  options.max_statements = 10;
  options.statement_limits.deadline_ms = 100;
  auto db = make_db();
  const CampaignResult result = fuzzer.Run(*db, options);
  EXPECT_EQ(result.statements_executed, 3);
  EXPECT_EQ(result.watchdog_timeouts, 1);
  EXPECT_EQ(result.sql_errors, 0);
  EXPECT_EQ(result.false_positives, 0);
}

// ---------------------------------------------------------------------------
// Supervision: backoff, degradation, the SIGALRM backstop
// ---------------------------------------------------------------------------

TEST(WorkerSupervision, SilentStartupDeathsRecoverWithBackoff) {
  const std::vector<std::string> script = CrashMatrixScript();
  CampaignOptions options;
  options.max_statements = 100;
  options.crash_realism = CrashRealism::kReal;
  WorkerOptions worker;
  worker.max_consecutive_deaths = 3;
  worker.backoff_initial_ms = 1;
  worker.backoff_max_ms = 4;
  worker.test_silent_deaths = 2;  // fewer than the degradation threshold

  const WorkerShardOutcome outcome = RunShardInWorkerProcess(
      [&script] { return std::make_unique<ScriptedFuzzer>(script); },
      [] { return MakeCrashMatrixDb(); }, options, worker);

  EXPECT_FALSE(outcome.stats.degraded_to_simulated);
  EXPECT_EQ(outcome.stats.unexpected_deaths, 2);
  EXPECT_EQ(outcome.stats.real_crashes, static_cast<int>(kAllCrashTypes.size()));
  EXPECT_EQ(outcome.result.unique_bugs.size(), kAllCrashTypes.size());
}

TEST(WorkerSupervision, RepeatedUnannouncedDeathsDegradeToSimulated) {
  const std::vector<std::string> script = CrashMatrixScript();
  CampaignOptions options;
  options.max_statements = 100;
  options.crash_realism = CrashRealism::kReal;
  WorkerOptions worker;
  worker.max_consecutive_deaths = 3;
  worker.backoff_initial_ms = 1;
  worker.backoff_max_ms = 4;
  worker.test_kill9_at_crash = 0;  // every worker SIGKILLs at its first crash

  const WorkerShardOutcome outcome = RunShardInWorkerProcess(
      [&script] { return std::make_unique<ScriptedFuzzer>(script); },
      [] { return MakeCrashMatrixDb(); }, options, worker);

  // The shard degrades but still completes with the full bug set — identical
  // to the simulated reference.
  EXPECT_TRUE(outcome.stats.degraded_to_simulated);
  EXPECT_EQ(outcome.stats.unexpected_deaths, 3);
  ScriptedFuzzer reference_fuzzer(script);
  auto reference_db = MakeCrashMatrixDb();
  CampaignOptions sim;
  sim.max_statements = 100;
  const CampaignResult reference = reference_fuzzer.Run(*reference_db, sim);
  ExpectSameCampaign(reference, outcome.result);
}

TEST(WorkerSupervision, AlarmBackstopKillsHungWorker) {
  const std::vector<std::string> script = CrashMatrixScript();
  CampaignOptions options;
  options.max_statements = 100;
  options.crash_realism = CrashRealism::kReal;
  options.statement_limits.deadline_ms = 50;  // arms the 8x SIGALRM backstop
  WorkerOptions worker;
  worker.max_consecutive_deaths = 2;
  worker.backoff_initial_ms = 1;
  worker.backoff_max_ms = 4;
  worker.test_hang_at_crash = 0;  // hang instead of announcing

  const WorkerShardOutcome outcome = RunShardInWorkerProcess(
      [&script] { return std::make_unique<ScriptedFuzzer>(script); },
      [] { return MakeCrashMatrixDb(); }, options, worker);

  // Every hung worker was reaped by the backstop, never left running; the
  // shard then degraded and completed.
  EXPECT_EQ(outcome.stats.alarm_kills, 2);
  EXPECT_EQ(outcome.stats.unexpected_deaths, 2);
  EXPECT_TRUE(outcome.stats.degraded_to_simulated);
  EXPECT_EQ(outcome.result.unique_bugs.size(), kAllCrashTypes.size());
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

TEST(Checkpoints, RealModeForwardsTheSimulatedCheckpointStream) {
  // Worker restarts re-emit already-streamed checkpoints; the supervisor must
  // forward each logical checkpoint exactly once, in order.
  const std::vector<std::string> script = CrashMatrixScript();

  std::vector<CampaignCheckpoint> sim_checkpoints;
  CampaignOptions sim;
  sim.max_statements = 100;
  sim.checkpoint_every = 2;
  sim.checkpoint_sink = [&sim_checkpoints](const CampaignCheckpoint& cp) {
    sim_checkpoints.push_back(cp);
    return true;
  };
  ScriptedFuzzer sim_fuzzer(script);
  auto sim_db = MakeCrashMatrixDb();
  const CampaignResult sim_result = sim_fuzzer.Run(*sim_db, sim);
  ASSERT_FALSE(sim_checkpoints.empty());

  std::vector<CampaignCheckpoint> real_checkpoints;
  CampaignOptions real = sim;
  real.crash_realism = CrashRealism::kReal;
  real.checkpoint_sink = [&real_checkpoints](const CampaignCheckpoint& cp) {
    real_checkpoints.push_back(cp);
    return true;
  };
  const WorkerShardOutcome outcome = RunShardInWorkerProcess(
      [&script] { return std::make_unique<ScriptedFuzzer>(script); },
      [] { return MakeCrashMatrixDb(); }, real);

  EXPECT_EQ(real_checkpoints, sim_checkpoints);
  ExpectSameCampaign(sim_result, outcome.result);
}

TEST(Checkpoints, SoftCampaignCheckpointsAreDeterministic) {
  CampaignOptions options;
  options.seed = 3;
  options.max_statements = 900;
  options.checkpoint_every = 150;

  std::vector<CampaignCheckpoint> first;
  options.checkpoint_sink = [&first](const CampaignCheckpoint& cp) {
    first.push_back(cp);
    return true;
  };
  RunShardedSoftCampaign("mariadb", options, 1);

  std::vector<CampaignCheckpoint> second;
  options.checkpoint_sink = [&second](const CampaignCheckpoint& cp) {
    second.push_back(cp);
    return true;
  };
  RunShardedSoftCampaign("mariadb", options, 1);

  ASSERT_EQ(first.size(), second.size());
  EXPECT_GE(first.size(), 5u);
  EXPECT_EQ(first, second);
  // Progress is monotone and the cursor fields are populated.
  for (size_t i = 1; i < first.size(); ++i) {
    EXPECT_GT(first[i].cases_completed, first[i - 1].cases_completed);
  }
  EXPECT_NE(first.back().rng_fingerprint, 0u);
}

// ---------------------------------------------------------------------------
// Resume
// ---------------------------------------------------------------------------

TEST(CheckpointResume, Kill9MidCampaignResumesBitIdentical) {
  const std::string journal_path =
      testing::TempDir() + "/soft_kill9_journal.ndjson";
  std::remove(journal_path.c_str());

  CampaignOptions options;
  options.seed = 11;
  options.max_statements = 12000;
  options.checkpoint_every = 150;

  // Uninterrupted reference.
  const CampaignResult reference = RunShardedSoftCampaign("duckdb", options, 1);

  // A real campaign process, streaming its journal, killed with SIGKILL.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    std::ofstream out(journal_path, std::ios::trunc);
    CampaignOptions child = options;
    telemetry::WriteCampaignStart(out, child, "SOFT", "duckdb", 1);
    out.flush();
    child.checkpoint_sink = [&out](const CampaignCheckpoint& cp) {
      telemetry::WriteCheckpointRecord(out, cp);
      out.flush();
      return out.good();
    };
    RunShardedSoftCampaign("duckdb", child, 1);
    ::_exit(0);
  }
  // Kill once at least two checkpoints hit the disk.
  bool killed = false;
  for (int i = 0; i < 2000; ++i) {
    std::ifstream in(journal_path);
    int checkpoints = 0;
    std::string line;
    while (std::getline(in, line)) {
      if (line.find("\"checkpoint\"") != std::string::npos) {
        ++checkpoints;
      }
    }
    if (checkpoints >= 2) {
      ::kill(pid, SIGKILL);
      killed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  ASSERT_TRUE(killed) << "campaign finished before it could be killed";
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  // Resume from the torn journal: verified replay, bit-identical result.
  const Result<ResumeSpec> spec = LoadResumeSpec(journal_path);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_FALSE(spec->finished);
  ASSERT_TRUE(spec->has_checkpoint);
  EXPECT_GE(spec->last_checkpoint.cases_completed, 300);

  CampaignOptions base;  // knobs the journal does not record
  const Result<CampaignResult> resumed = ResumeSoftCampaign(*spec, base);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectSameCampaign(reference, *resumed);
  std::remove(journal_path.c_str());
}

TEST(CheckpointResume, VerificationRejectsForeignJournal) {
  // A journal whose checkpoint fingerprint does not belong to its seed: the
  // replay must fail loudly instead of producing a different campaign.
  const std::string journal_path =
      testing::TempDir() + "/soft_foreign_journal.ndjson";
  {
    std::ofstream out(journal_path, std::ios::trunc);
    CampaignOptions options;
    options.seed = 5;
    options.max_statements = 600;
    options.checkpoint_every = 100;
    telemetry::WriteCampaignStart(out, options, "SOFT", "duckdb", 1);
    CampaignCheckpoint cp;
    cp.every = 100;
    cp.cases_completed = 100;
    cp.rng_fingerprint = 0xDEADBEEF;  // not this campaign's cursor
    cp.dedup_digest = 0xDEADBEEF;
    telemetry::WriteCheckpointRecord(out, cp);
  }
  const Result<ResumeSpec> spec = LoadResumeSpec(journal_path);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  CampaignOptions base;
  const Result<CampaignResult> resumed = ResumeSoftCampaign(*spec, base);
  ASSERT_FALSE(resumed.ok());
  EXPECT_NE(resumed.status().message().find("diverged"), std::string::npos)
      << resumed.status().ToString();
  std::remove(journal_path.c_str());
}

TEST(CheckpointResume, DivergenceReportNamesTheDivergedFields) {
  // When the verification checkpoint mismatches, the error must say *which*
  // fields diverged and both values — not just "diverged".
  const std::string journal_path =
      testing::TempDir() + "/soft_divergent_journal.ndjson";
  {
    std::ofstream out(journal_path, std::ios::trunc);
    CampaignOptions options;
    options.seed = 5;
    options.max_statements = 600;
    options.checkpoint_every = 100;
    telemetry::WriteCampaignStart(out, options, "SOFT", "duckdb", 1);
    CampaignCheckpoint cp;
    cp.every = 100;
    cp.cases_completed = 100;
    cp.rng_fingerprint = 0xDEADBEEF;  // not this campaign's cursor
    cp.dedup_digest = 0xDEADBEEF;
    telemetry::WriteCheckpointRecord(out, cp);
  }
  const Result<ResumeSpec> spec = LoadResumeSpec(journal_path);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  CampaignOptions base;
  const Result<CampaignResult> resumed = ResumeSoftCampaign(*spec, base);
  ASSERT_FALSE(resumed.ok());
  const std::string& message = resumed.status().message();
  EXPECT_NE(message.find("rng_fingerprint"), std::string::npos) << message;
  EXPECT_NE(message.find("dedup_digest"), std::string::npos) << message;
  EXPECT_NE(message.find("journal=" + std::to_string(0xDEADBEEFull)),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("replay="), std::string::npos) << message;
  std::remove(journal_path.c_str());
}

TEST(CheckpointResume, MultiShardJournalsAreRejected) {
  const std::string journal_path =
      testing::TempDir() + "/soft_sharded_journal.ndjson";
  {
    std::ofstream out(journal_path, std::ios::trunc);
    CampaignOptions options;
    options.seed = 5;
    options.max_statements = 600;
    telemetry::WriteCampaignStart(out, options, "SOFT", "duckdb", 4);
  }
  const Result<ResumeSpec> spec = LoadResumeSpec(journal_path);
  EXPECT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("single-shard"), std::string::npos)
      << spec.status().ToString();
  std::remove(journal_path.c_str());
}

// ---------------------------------------------------------------------------
// Vanilla twin under real-crash mode
// ---------------------------------------------------------------------------

TEST(WorkerHarness, VanillaTwinSurvivesRealCrashModeWithZeroSignals) {
  // A database with no fault corpus cannot raise: one fork, no crashes, and
  // the real-mode result equals the simulated one trivially.
  CampaignOptions options;
  options.seed = 17;
  options.max_statements = 400;

  auto make_db = [] {
    EngineConfig config;
    config.name = "duckdb";  // duckdb's seed suite against a vanilla engine
    return std::make_unique<Database>(config);
  };
  auto make_fuzzer = [] { return std::make_unique<SoftFuzzer>(); };

  CampaignOptions real = options;
  real.crash_realism = CrashRealism::kReal;
  const WorkerShardOutcome outcome =
      RunShardInWorkerProcess(make_fuzzer, make_db, real);

  EXPECT_EQ(outcome.stats.forks, 1);
  EXPECT_EQ(outcome.stats.real_crashes, 0);
  EXPECT_EQ(outcome.stats.unexpected_deaths, 0);
  EXPECT_FALSE(outcome.stats.degraded_to_simulated);
  EXPECT_EQ(outcome.result.crashes_observed, 0);
  EXPECT_TRUE(outcome.result.unique_bugs.empty());

  auto db = make_db();
  SoftFuzzer fuzzer;
  const CampaignResult reference = fuzzer.Run(*db, options);
  ExpectSameCampaign(reference, outcome.result);
}

}  // namespace
}  // namespace soft
