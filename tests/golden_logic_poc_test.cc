// Golden wrong-result corpus: the logic PoC statements logged by a reference
// --oracle=all campaign (one per seeded LogicBugSpec, checked in under
// tests/golden/logic/) must each still be flagged when replayed directly —
// and by the same oracle. This is the regression net over the EET
// transformer, the differential siblings, and the evaluator's logic-fault
// hook: a silently defanged LogicBugSpec, a variant builder that stops
// rewriting, or a widened declared-difference table all break it without
// needing a fuzzing run. Regenerate with examples/gen_golden_pocs when the
// wrong-result corpus intentionally changes.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/dialects/dialects.h"
#include "src/soft/logic_oracle.h"

#ifndef SOFT_GOLDEN_DIR
#error "SOFT_GOLDEN_DIR must be defined to the tests/golden directory"
#endif

namespace soft {
namespace {

struct GoldenLogicPoc {
  int bug_id = 0;
  std::string oracle;  // "eet" | "diff" | "norec" | "tlp"
  std::string sql;
};

std::vector<GoldenLogicPoc> LoadGoldenLogicPocs(const std::string& dialect) {
  const std::string path =
      std::string(SOFT_GOLDEN_DIR) + "/logic/logic_" + dialect + ".txt";
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing golden logic corpus: " << path;
  std::vector<GoldenLogicPoc> pocs;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const size_t first_tab = line.find('\t');
    const size_t second_tab =
        first_tab == std::string::npos ? std::string::npos
                                       : line.find('\t', first_tab + 1);
    EXPECT_NE(second_tab, std::string::npos) << "malformed golden line: " << line;
    if (second_tab == std::string::npos) {
      continue;
    }
    GoldenLogicPoc poc;
    poc.bug_id = std::stoi(line.substr(0, first_tab));
    poc.oracle = line.substr(first_tab + 1, second_tab - first_tab - 1);
    poc.sql = line.substr(second_tab + 1);
    pocs.push_back(std::move(poc));
  }
  return pocs;
}

class GoldenLogicPocTest : public testing::TestWithParam<std::string> {};

TEST_P(GoldenLogicPocTest, EverySeededLogicBugIsStillCaughtByItsOracle) {
  const std::string& dialect = GetParam();
  const std::vector<GoldenLogicPoc> pocs = LoadGoldenLogicPocs(dialect);
  ASSERT_EQ(static_cast<int>(pocs.size()), ExpectedLogicBugCount(dialect))
      << dialect << ": corpus must hold one PoC per seeded logic bug";

  auto db = MakeDialect(dialect);
  ASSERT_NE(db, nullptr);
  std::vector<std::unique_ptr<LogicOracle>> oracles =
      MakeLogicOracles({"all"}, dialect);
  ASSERT_EQ(oracles.size(), 4u);
  for (const std::string& prereq : LogicOraclePrerequisites()) {
    ASSERT_TRUE(db->Execute(prereq).ok()) << prereq;
    for (const std::unique_ptr<LogicOracle>& oracle : oracles) {
      oracle->ObserveSideEffect(prereq);
    }
  }
  // Arm after the prerequisites, exactly like the campaign: the stored rows
  // must be identical between the campaign database and the clean siblings.
  db->set_logic_faults_enabled(true);

  std::set<int> caught;
  for (const GoldenLogicPoc& poc : pocs) {
    const StatementResult r = db->Execute(poc.sql);
    ASSERT_TRUE(r.ok()) << dialect << ": logic PoC no longer executes: " << poc.sql;
    ASSERT_FALSE(r.logic_hits.empty())
        << dialect << ": PoC no longer fires its LogicBugSpec: " << poc.sql;
    // Replay the campaign's attribution rule: first flagging oracle wins.
    std::string flagged_by;
    for (const std::unique_ptr<LogicOracle>& oracle : oracles) {
      const LogicOracle::Verdict v = oracle->Check(*db, poc.sql, r);
      if (v.checked && v.divergence) {
        flagged_by = std::string(oracle->name());
        break;
      }
    }
    ASSERT_FALSE(flagged_by.empty())
        << dialect << ": no oracle flags seeded wrong-result bug " << poc.bug_id
        << " (" << poc.sql << ")";
    EXPECT_EQ(flagged_by, poc.oracle) << poc.sql;
    bool hit_recorded = false;
    for (const LogicBugInfo& hit : r.logic_hits) {
      caught.insert(hit.bug_id);
      hit_recorded = hit_recorded || hit.bug_id == poc.bug_id;
    }
    EXPECT_TRUE(hit_recorded)
        << dialect << ": PoC fired a different LogicBugSpec than recorded: "
        << poc.sql;
  }

  // Corpus completeness: every seeded spec is caught, none is missing.
  std::set<int> seeded;
  for (const LogicBugSpec& spec : db->faults().AllLogicBugs()) {
    seeded.insert(spec.id);
  }
  EXPECT_EQ(caught, seeded) << dialect;
}

INSTANTIATE_TEST_SUITE_P(AllDialects, GoldenLogicPocTest,
                         testing::ValuesIn(AllDialectNames()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(GoldenLogicCorpus, CoversEverySeededSpecAcrossAllDialects) {
  int total = 0;
  for (const std::string& dialect : AllDialectNames()) {
    total += static_cast<int>(LoadGoldenLogicPocs(dialect).size());
    EXPECT_EQ(static_cast<int>(LoadGoldenLogicPocs(dialect).size()),
              ExpectedLogicBugCount(dialect));
  }
  EXPECT_EQ(total, 21);  // 7 dialects x 3 seeded wrong-result bugs
}

}  // namespace
}  // namespace soft
