// Golden PoC regression corpus: the 132 PoC SQL strings logged by a
// reference SOFT campaign (one per injected Table 4 bug, checked in under
// tests/golden/) must each still trigger their recorded bug id and crash
// type when replayed directly. This is the fast regression net over the
// parse→optimize→execute→fault pipeline — it catches a silently defanged
// fault spec or a generator/engine regression without needing a fuzzing run.
// Regenerate the corpus with examples/gen_golden_pocs when the fault corpus
// intentionally changes.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "src/dialects/dialects.h"

#ifndef SOFT_GOLDEN_DIR
#error "SOFT_GOLDEN_DIR must be defined to the tests/golden directory"
#endif

namespace soft {
namespace {

struct GoldenPoc {
  int bug_id = 0;
  std::string crash_type;  // short name: "NPD", "SEGV", ...
  std::string sql;
};

std::vector<GoldenPoc> LoadGoldenPocs(const std::string& dialect) {
  const std::string path = std::string(SOFT_GOLDEN_DIR) + "/pocs_" + dialect + ".txt";
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing golden corpus: " << path;
  std::vector<GoldenPoc> pocs;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const size_t first_tab = line.find('\t');
    const size_t second_tab =
        first_tab == std::string::npos ? std::string::npos : line.find('\t', first_tab + 1);
    EXPECT_NE(second_tab, std::string::npos) << "malformed golden line: " << line;
    if (second_tab == std::string::npos) {
      continue;
    }
    GoldenPoc poc;
    poc.bug_id = std::stoi(line.substr(0, first_tab));
    poc.crash_type = line.substr(first_tab + 1, second_tab - first_tab - 1);
    poc.sql = line.substr(second_tab + 1);
    pocs.push_back(std::move(poc));
  }
  return pocs;
}

class GoldenPocTest : public testing::TestWithParam<std::string> {};

TEST_P(GoldenPocTest, EveryPocStillTriggersItsRecordedBug) {
  const std::vector<GoldenPoc> pocs = LoadGoldenPocs(GetParam());
  ASSERT_EQ(static_cast<int>(pocs.size()), ExpectedBugCount(GetParam()))
      << GetParam() << ": corpus must hold one PoC per injected bug";
  auto db = MakeDialect(GetParam());
  ASSERT_NE(db, nullptr);
  std::set<int> triggered;
  for (const GoldenPoc& poc : pocs) {
    const StatementResult r = db->Execute(poc.sql);
    ASSERT_TRUE(r.crashed()) << GetParam() << ": golden PoC no longer crashes: "
                             << poc.sql;
    EXPECT_EQ(r.crash->bug_id, poc.bug_id) << poc.sql;
    EXPECT_EQ(CrashTypeName(r.crash->crash), poc.crash_type) << poc.sql;
    triggered.insert(r.crash->bug_id);
  }
  // The corpus covers every distinct injected bug, not one bug many times.
  EXPECT_EQ(triggered.size(), pocs.size());
}

INSTANTIATE_TEST_SUITE_P(AllDialects, GoldenPocTest,
                         testing::ValuesIn(AllDialectNames()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(GoldenPocCorpus, CoversThePapers132Bugs) {
  int total = 0;
  for (const std::string& dialect : AllDialectNames()) {
    total += static_cast<int>(LoadGoldenPocs(dialect).size());
  }
  EXPECT_EQ(total, 132);
}

}  // namespace
}  // namespace soft
