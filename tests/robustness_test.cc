// Substrate-robustness properties: the vanilla engine (no injected faults)
// must survive everything the four fuzzers can throw at it — no crashes, no
// kInternal errors, no aborts — and every generated statement must at least
// tokenize. These are the "reference implementations carry the fixes"
// guarantees the whole reproduction rests on.
#include <gtest/gtest.h>

#include "src/baselines/comparison.h"
#include "src/dialects/dialects.h"
#include "src/soft/worker.h"
#include "src/soft/boundary_values.h"
#include "src/soft/expr_collection.h"
#include "src/soft/patterns.h"
#include "src/soft/seeds.h"
#include "src/sqlparser/parser.h"

namespace soft {
namespace {

// A dialect stripped of its fault corpus: same catalog/strictness, no bugs.
std::unique_ptr<Database> VanillaTwin(const std::string& dialect) {
  auto db = MakeDialect(dialect);
  // Copy every engine knob explicitly: the twin must differ from the dialect
  // in exactly one way — no fault corpus. A knob that drifts here (cast
  // strictness, engine limits, watchdog budgets) silently weakens every
  // robustness property below.
  EngineConfig config;
  config.name = db->config().name;
  config.cast_options = db->config().cast_options;
  config.limits = db->config().limits;
  config.statement_limits = db->config().statement_limits;
  auto twin = std::make_unique<Database>(config);
  // Copy the dialect's exact catalog (including dialect-specific extras).
  FunctionRegistry& target = twin->registry();
  std::vector<std::string> to_remove;
  for (const FunctionDef* def : target.All()) {
    if (!db->registry().Contains(def->name)) {
      to_remove.push_back(def->name);
    }
  }
  for (const std::string& name : to_remove) {
    target.Remove(name);
  }
  for (const FunctionDef* def : db->registry().All()) {
    target.Register(*def);
  }
  return twin;
}

class FuzzerRobustnessTest
    : public testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(FuzzerRobustnessTest, VanillaEngineSurvivesEveryFuzzer) {
  const auto& [dialect, tool_index] = GetParam();
  auto tools = MakeAllTools();
  Fuzzer& tool = *tools[static_cast<size_t>(tool_index)];

  auto db = VanillaTwin(dialect);
  CampaignOptions options;
  options.seed = 17;
  options.max_statements = 3000;
  const CampaignResult result = tool.Run(*db, options);

  EXPECT_EQ(result.crashes_observed, 0)
      << tool.name() << " crashed the vanilla " << dialect << " twin";
  EXPECT_TRUE(result.unique_bugs.empty());
  EXPECT_EQ(result.statements_executed, 3000);
}

std::string RobustnessName(
    const testing::TestParamInfo<std::tuple<std::string, int>>& info) {
  static const char* kTools[] = {"squirrel", "sqlancer", "sqlsmith", "soft"};
  return std::get<0>(info.param) + "_" + kTools[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, FuzzerRobustnessTest,
    testing::Combine(testing::Values("postgresql", "mariadb", "duckdb", "virtuoso"),
                     testing::Values(0, 1, 2, 3)),
    RobustnessName);

TEST(FuzzerRobustness, VanillaTwinSurvivesRealCrashMode) {
  // With no fault corpus there is nothing to realize: under
  // CrashRealism::kReal the worker harness must complete the campaign in a
  // single forked worker with zero signals — and match the in-process
  // simulated run exactly.
  CampaignOptions options;
  options.seed = 17;
  options.max_statements = 1500;
  options.crash_realism = CrashRealism::kReal;

  const WorkerShardOutcome outcome = RunShardInWorkerProcess(
      [] { return std::make_unique<SoftFuzzer>(); },
      [] { return VanillaTwin("mariadb"); }, options);

  EXPECT_EQ(outcome.stats.forks, 1);
  EXPECT_EQ(outcome.stats.real_crashes, 0);
  EXPECT_EQ(outcome.stats.unexpected_deaths, 0);
  EXPECT_FALSE(outcome.stats.degraded_to_simulated);
  EXPECT_EQ(outcome.result.crashes_observed, 0);
  EXPECT_TRUE(outcome.result.unique_bugs.empty());
  EXPECT_EQ(outcome.result.statements_executed, 1500);
}

class PatternSqlValidityTest : public testing::TestWithParam<std::string> {};

TEST_P(PatternSqlValidityTest, EveryGeneratedCaseParses) {
  // Property: the pattern engine emits only parseable SQL for every seed of
  // every dialect — mutations never corrupt syntax.
  auto db = MakeDialect(GetParam());
  PatternEngine engine(*db, 23);
  const std::vector<std::string> suite = SeedSuiteFor(GetParam());
  const FunctionCorpus corpus = CollectCorpus(*db, suite);

  int checked = 0;
  for (size_t i = 0; i < corpus.expressions.size(); i += 7) {  // sampled seeds
    std::vector<GeneratedCase> cases;
    engine.GenerateAll(corpus.expressions[i], corpus.expressions, cases);
    for (const GeneratedCase& c : cases) {
      const Result<Statement> parsed = ParseStatement(c.sql);
      ASSERT_TRUE(parsed.ok()) << c.pattern << ": " << c.sql << " -> "
                               << parsed.status().ToString();
      ++checked;
    }
  }
  EXPECT_GT(checked, 500);
}

INSTANTIATE_TEST_SUITE_P(AllDialects, PatternSqlValidityTest,
                         testing::ValuesIn(AllDialectNames()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(PoolRobustness, EveryPoolSnippetParsesAsExpression) {
  for (const std::string& snippet : GenerateBoundaryPool().snippets) {
    EXPECT_TRUE(ParseExpression(snippet).ok()) << snippet;
  }
  for (const std::string& snippet : GenerateExtremesOnlyPool().snippets) {
    EXPECT_TRUE(ParseExpression(snippet).ok()) << snippet;
  }
}

TEST(SeedRobustness, EverySuiteLineExecutesOrErrorsCleanly) {
  for (const std::string& dialect : AllDialectNames()) {
    auto db = MakeDialect(dialect);
    for (const std::string& line : SeedSuiteFor(dialect)) {
      const StatementResult r = db->Execute(line);
      EXPECT_FALSE(r.crashed()) << dialect << " seed crashed: " << line << " -> "
                                << r.crash->Summary();
      EXPECT_NE(r.status.code(), StatusCode::kInternal) << dialect << ": " << line;
      // Seeds are the dialect's regression suite: they must actually pass.
      EXPECT_TRUE(r.ok()) << dialect << " seed failed: " << line << " -> "
                          << r.status.ToString();
    }
  }
}

}  // namespace
}  // namespace soft
