// Determinism contract of the sharded campaign runner: a K-shard parallel
// SOFT campaign must be bit-identical to the serial sum of the same K shards
// run sequentially (thread scheduling must never leak into results), two
// parallel runs of the same plan must be bit-identical to each other, and a
// 1-shard run must reproduce the plain serial campaign exactly. Run these
// under ThreadSanitizer (-DSOFT_SANITIZE=thread) to validate the
// per-thread-instance model; see README "Parallel campaigns".
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/dialects/dialects.h"
#include "src/soft/parallel_runner.h"
#include "src/soft/soft_fuzzer.h"
#include "src/util/rng.h"

namespace soft {
namespace {

ParallelCampaignRunner SoftRunner(const std::string& dialect) {
  return ParallelCampaignRunner([] { return std::make_unique<SoftFuzzer>(); },
                                [dialect] { return MakeDialect(dialect); });
}

void ExpectBitIdentical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.tool, b.tool);
  EXPECT_EQ(a.dialect, b.dialect);
  EXPECT_EQ(a.statements_executed, b.statements_executed);
  EXPECT_EQ(a.sql_errors, b.sql_errors);
  EXPECT_EQ(a.crashes_observed, b.crashes_observed);
  EXPECT_EQ(a.false_positives, b.false_positives);
  EXPECT_EQ(a.functions_triggered, b.functions_triggered);
  EXPECT_EQ(a.branches_covered, b.branches_covered);
  EXPECT_EQ(a.shards, b.shards);
  EXPECT_EQ(a.shard_statements, b.shard_statements);
  ASSERT_EQ(a.unique_bugs.size(), b.unique_bugs.size());
  for (size_t i = 0; i < a.unique_bugs.size(); ++i) {
    EXPECT_EQ(a.unique_bugs[i].crash.bug_id, b.unique_bugs[i].crash.bug_id);
    EXPECT_EQ(a.unique_bugs[i].poc_sql, b.unique_bugs[i].poc_sql);
    EXPECT_EQ(a.unique_bugs[i].found_by, b.unique_bugs[i].found_by);
    EXPECT_EQ(a.unique_bugs[i].statements_until_found,
              b.unique_bugs[i].statements_until_found);
    EXPECT_EQ(a.unique_bugs[i].shard, b.unique_bugs[i].shard);
  }
}

class ParallelCampaignTest : public testing::TestWithParam<std::string> {};

// The load-bearing property: parallel execution of the shard plan yields the
// same unique-bug set, coverage counts, and per-shard statement counts as
// running the K shards sequentially and merging.
TEST_P(ParallelCampaignTest, ParallelRunMatchesSerialShardSum) {
  const ParallelCampaignRunner runner = SoftRunner(GetParam());
  CampaignOptions options;
  options.seed = 11;
  options.max_statements = 4000;
  const CampaignResult parallel = runner.Run(options, 4);
  const CampaignResult serial = runner.RunSerial(options, 4);
  ExpectBitIdentical(parallel, serial);
  EXPECT_EQ(parallel.shards, 4);
  EXPECT_EQ(parallel.statements_executed, options.max_statements);
}

INSTANTIATE_TEST_SUITE_P(AllDialects, ParallelCampaignTest,
                         testing::ValuesIn(AllDialectNames()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(ParallelCampaign, TwoEightShardRunsAreBitIdentical) {
  const ParallelCampaignRunner runner = SoftRunner("mariadb");
  CampaignOptions options;
  options.seed = 5;
  options.max_statements = 8000;
  const CampaignResult first = runner.Run(options, 8);
  const CampaignResult second = runner.Run(options, 8);
  ExpectBitIdentical(first, second);
  ASSERT_EQ(first.shard_statements.size(), 8u);
}

// shards == 1 must reproduce the plain serial campaign bit-for-bit (the
// runner is a drop-in replacement, not a different campaign).
TEST(ParallelCampaign, OneShardMatchesPlainSerialCampaign) {
  CampaignOptions options;
  options.seed = 7;
  options.max_statements = 5000;

  auto db = MakeDialect("duckdb");
  SoftFuzzer fuzzer;
  const CampaignResult plain = fuzzer.Run(*db, options);

  const CampaignResult sharded = RunShardedSoftCampaign("duckdb", options, 1);
  EXPECT_EQ(sharded.shards, 1);
  EXPECT_EQ(plain.statements_executed, sharded.statements_executed);
  EXPECT_EQ(plain.sql_errors, sharded.sql_errors);
  EXPECT_EQ(plain.crashes_observed, sharded.crashes_observed);
  EXPECT_EQ(plain.false_positives, sharded.false_positives);
  EXPECT_EQ(plain.functions_triggered, sharded.functions_triggered);
  EXPECT_EQ(plain.branches_covered, sharded.branches_covered);
  ASSERT_EQ(plain.unique_bugs.size(), sharded.unique_bugs.size());
  for (size_t i = 0; i < plain.unique_bugs.size(); ++i) {
    EXPECT_EQ(plain.unique_bugs[i].crash.bug_id, sharded.unique_bugs[i].crash.bug_id);
    EXPECT_EQ(plain.unique_bugs[i].poc_sql, sharded.unique_bugs[i].poc_sql);
    EXPECT_EQ(plain.unique_bugs[i].found_by, sharded.unique_bugs[i].found_by);
  }
}

TEST(ParallelCampaign, ShardPlanSplitsBudgetExactly) {
  CampaignOptions options;
  options.seed = 42;
  options.max_statements = 10007;
  const std::vector<ShardPlan> plans = PlanShards(options, 8);
  ASSERT_EQ(plans.size(), 8u);
  int total = 0;
  std::set<uint64_t> seeds;
  for (const ShardPlan& plan : plans) {
    EXPECT_TRUE(plan.options.max_statements == 1250 ||
                plan.options.max_statements == 1251);
    total += plan.options.max_statements;
    seeds.insert(plan.options.seed);
  }
  EXPECT_EQ(total, options.max_statements);
  // Shard 0 keeps the base seed (1-shard == serial invariant); all shard
  // seed streams are pairwise distinct.
  EXPECT_EQ(plans[0].options.seed, options.seed);
  EXPECT_EQ(seeds.size(), plans.size());
  // The derivation is a pure function of (base seed, shard).
  EXPECT_EQ(SeedForShard(42, 3), SeedForShard(42, 3));
  EXPECT_NE(SeedForShard(42, 3), SeedForShard(43, 3));
}

// Partition-mode plans keep the base seed and the full budget and instead
// stripe the global case order across shards.
TEST(ParallelCampaign, PartitionPlanCarriesBaseSeedAndFullBudget) {
  CampaignOptions options;
  options.seed = 42;
  options.max_statements = 10007;
  const std::vector<ShardPlan> plans =
      PlanShards(options, 8, ShardMode::kPartitionCases);
  ASSERT_EQ(plans.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    const ShardPlan& plan = plans[static_cast<size_t>(i)];
    EXPECT_EQ(plan.options.seed, options.seed);
    EXPECT_EQ(plan.options.max_statements, options.max_statements);
    EXPECT_EQ(plan.options.shard_index, i);
    EXPECT_EQ(plan.options.shard_count, 8);
  }
}

// The partition mode's defining property: because the K shards execute the
// exact interleave of the serial campaign's case order, the merged run
// reproduces the serial campaign's bug set, coverage, and statement totals
// at ANY budget — work is divided, not resampled.
TEST(ParallelCampaign, PartitionModeReproducesSerialCampaignExactly) {
  CampaignOptions options;
  options.seed = 1;
  options.max_statements = 9000;

  auto db = MakeDialect("virtuoso");
  SoftFuzzer fuzzer;
  const CampaignResult serial = fuzzer.Run(*db, options);

  const CampaignResult merged = RunShardedSoftCampaign(
      "virtuoso", options, 8, SoftOptions(), ShardMode::kPartitionCases);
  EXPECT_EQ(merged.shards, 8);
  EXPECT_EQ(merged.statements_executed, serial.statements_executed);
  EXPECT_EQ(merged.sql_errors, serial.sql_errors);
  EXPECT_EQ(merged.crashes_observed, serial.crashes_observed);
  EXPECT_EQ(merged.false_positives, serial.false_positives);
  EXPECT_EQ(merged.functions_triggered, serial.functions_triggered);
  EXPECT_EQ(merged.branches_covered, serial.branches_covered);

  std::set<int> serial_ids, merged_ids;
  for (const FoundBug& bug : serial.unique_bugs) {
    serial_ids.insert(bug.crash.bug_id);
  }
  for (const FoundBug& bug : merged.unique_bugs) {
    merged_ids.insert(bug.crash.bug_id);
  }
  EXPECT_EQ(merged_ids, serial_ids);
}

// Partition-mode parallel execution obeys the same determinism contract as
// budget splitting: bit-identical to its sequential shard sum.
TEST(ParallelCampaign, PartitionParallelRunMatchesSerialShardSum) {
  const ParallelCampaignRunner runner = SoftRunner("clickhouse");
  CampaignOptions options;
  options.seed = 9;
  options.max_statements = 6000;
  const CampaignResult parallel =
      runner.Run(options, 4, ShardMode::kPartitionCases);
  const CampaignResult serial =
      runner.RunSerial(options, 4, ShardMode::kPartitionCases);
  ExpectBitIdentical(parallel, serial);
  EXPECT_EQ(parallel.shards, 4);
}

// The merged witness for each bug must carry the lowest
// (shard, statements_until_found) pair among all shard witnesses, making
// found_by attribution independent of which thread finished first.
TEST(ParallelCampaign, MergeKeepsLowestWitnessPerBug) {
  const ParallelCampaignRunner runner = SoftRunner("mysql");
  CampaignOptions options;
  options.seed = 3;
  options.max_statements = 6000;
  const CampaignResult merged = runner.Run(options, 4);

  std::set<int> merged_ids;
  for (const FoundBug& bug : merged.unique_bugs) {
    merged_ids.insert(bug.crash.bug_id);
  }
  const std::vector<ShardPlan> plans = PlanShards(options, 4);
  std::set<int> union_ids;
  for (const ShardPlan& plan : plans) {
    auto db = MakeDialect("mysql");
    SoftFuzzer fuzzer;
    const CampaignResult shard = fuzzer.Run(*db, plan.options);
    for (const FoundBug& bug : shard.unique_bugs) {
      union_ids.insert(bug.crash.bug_id);
      // A merged witness for this bug can never be later than this shard's.
      for (const FoundBug& kept : merged.unique_bugs) {
        if (kept.crash.bug_id == bug.crash.bug_id && kept.shard == plan.shard) {
          EXPECT_LE(kept.statements_until_found, bug.statements_until_found);
        }
      }
    }
  }
  EXPECT_EQ(merged_ids, union_ids);
}

}  // namespace
}  // namespace soft
