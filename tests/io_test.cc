// Crash-atomic I/O layer (src/util/io.h): RetryingWriter absorbs transient
// fd faults, WriteFileAtomic leaves the destination either untouched or
// fully replaced. The transient/persistent faults are injected through the
// io.* failpoints, so the failure paths here are the same ones the chaos
// enumerator drives (src/soft/chaos.h).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/failpoint/failpoint.h"
#include "src/util/io.h"

namespace soft {
namespace {

std::string ReadAllFromFd(int fd) {
  std::string received;
  char chunk[4096];
  for (;;) {
    const int64_t n = io::ReadRetrying(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      break;
    }
    received.append(chunk, static_cast<size_t>(n));
  }
  return received;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string MakePayload() {
  std::string payload;
  for (int i = 0; i < 200; ++i) {
    payload += "record-" + std::to_string(i) + "\n";
  }
  return payload;
}

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(IoTest, RetryingWriterDeliversWholeBuffers) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload = MakePayload();
  io::RetryingWriter writer(fds[1]);
  ASSERT_TRUE(writer.WriteAll(payload).ok());
  ASSERT_TRUE(writer.WriteLine("tail").ok());
  ::close(fds[1]);
  EXPECT_EQ(ReadAllFromFd(fds[0]), payload + "tail\n");
  ::close(fds[0]);
}

TEST_F(IoTest, RetryingWriterAbsorbsInjectedEintr) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload = MakePayload();
  ASSERT_TRUE(failpoint::ArmFromSpec("io.eintr=after:0:5").ok());
  io::RetryingWriter writer(fds[1]);
  const Status written = writer.WriteAll(payload);
  const failpoint::SiteStats stats = failpoint::Stats("io.eintr");
  failpoint::DisarmAll();
  ASSERT_TRUE(written.ok()) << written.message();
  EXPECT_EQ(stats.fires, 5u);
  ::close(fds[1]);
  EXPECT_EQ(ReadAllFromFd(fds[0]), payload);
  ::close(fds[0]);
}

TEST_F(IoTest, RetryingWriterAbsorbsInjectedShortWrites) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // Every write is clamped to one byte: progress resets the attempt budget,
  // so the payload still lands whole (just in many syscalls).
  ASSERT_TRUE(failpoint::ArmFromSpec("io.short_write=error").ok());
  const std::string payload = "short-write-payload\n";
  io::RetryingWriter writer(fds[1]);
  const Status written = writer.WriteAll(payload);
  failpoint::DisarmAll();
  ASSERT_TRUE(written.ok()) << written.message();
  ::close(fds[1]);
  EXPECT_EQ(ReadAllFromFd(fds[0]), payload);
  ::close(fds[0]);
}

TEST_F(IoTest, RetryingWriterGivesUpAfterPolicyExhaustion) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // Persistent EINTR with no progress: bounded backoff, then kIoError.
  ASSERT_TRUE(failpoint::ArmFromSpec("io.eintr=error").ok());
  io::RetryPolicy fast;
  fast.max_attempts = 3;
  fast.backoff_initial_us = 1;
  fast.backoff_max_us = 2;
  io::RetryingWriter writer(fds[1], fast);
  const Status written = writer.WriteAll("payload");
  failpoint::DisarmAll();
  EXPECT_EQ(written.code(), StatusCode::kIoError);
  ::close(fds[1]);
  ::close(fds[0]);
}

TEST_F(IoTest, ReadRetryingRetriesEintrAndReportsEof) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(::write(fds[1], "abc", 3), 3);
  ::close(fds[1]);
  if (failpoint::kCompiledIn) {
    ASSERT_TRUE(failpoint::ArmFromSpec("worker.pipe_read=after:0:2").ok());
  }
  char buf[8];
  EXPECT_EQ(io::ReadRetrying(fds[0], buf, sizeof(buf)), 3);
  EXPECT_EQ(io::ReadRetrying(fds[0], buf, sizeof(buf)), 0);  // EOF
  failpoint::DisarmAll();
  ::close(fds[0]);
}

TEST_F(IoTest, WriteFileAtomicReplacesContents) {
  const std::string path = "io_test_" + std::to_string(::getpid()) + ".txt";
  ASSERT_TRUE(io::WriteFileAtomic(path, "first\n").ok());
  EXPECT_EQ(ReadFileOrEmpty(path), "first\n");
  ASSERT_TRUE(io::WriteFileAtomic(path, "second\n").ok());
  EXPECT_EQ(ReadFileOrEmpty(path), "second\n");
  std::remove(path.c_str());
}

TEST_F(IoTest, WriteFileAtomicFailuresLeaveDestinationUntouched) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  const std::string path = "io_atomic_" + std::to_string(::getpid()) + ".txt";
  const std::string tmp_path = path + ".tmp." + std::to_string(::getpid());
  ASSERT_TRUE(io::WriteFileAtomic(path, "previous contents\n").ok());

  for (const char* site : {"io.open", "io.write", "io.fsync", "io.rename"}) {
    SCOPED_TRACE(site);
    ASSERT_TRUE(failpoint::ArmFromSpec(std::string(site) + "=error").ok());
    const Status failed = io::WriteFileAtomic(path, "new contents\n");
    failpoint::DisarmAll();
    EXPECT_EQ(failed.code(), StatusCode::kIoError);
    EXPECT_NE(failed.message().find(path), std::string::npos)
        << failed.message();
    EXPECT_EQ(ReadFileOrEmpty(path), "previous contents\n");
    EXPECT_NE(::access(tmp_path.c_str(), F_OK), 0)
        << "tmp file left behind after " << site;
  }

  // Disarmed retry writes exactly what the failed attempts were writing.
  ASSERT_TRUE(io::WriteFileAtomic(path, "new contents\n").ok());
  EXPECT_EQ(ReadFileOrEmpty(path), "new contents\n");
  std::remove(path.c_str());
}

TEST_F(IoTest, RetryingWriterReportsPeerDeathAsCleanEpipe) {
  // With SIGPIPE ignored, writing into a pipe whose reader is gone must
  // surface as a kIoError naming the closed peer — not process death, and
  // not an infinite retry (EPIPE is persistent, unlike EINTR/EAGAIN).
  io::IgnoreSigpipe();
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[0]);
  io::RetryingWriter writer(fds[1]);
  // A payload larger than the pipe buffer would block forever if EPIPE were
  // treated as transient; one write() past the closed reader fails instantly.
  const Status status = writer.WriteAll(MakePayload());
  ::close(fds[1]);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("peer closed"), std::string::npos)
      << status.message();
}

}  // namespace
}  // namespace soft
