// Behaviour tests for the string function library — the paper's largest bug
// category, so its boundary branches get the densest coverage here.
#include <gtest/gtest.h>

#include "src/engine/database.h"

namespace soft {
namespace {

class StringFunctionsTest : public testing::Test {
 protected:
  std::string Eval(const std::string& expr) {
    const StatementResult r = db_.Execute("SELECT " + expr);
    if (!r.ok()) {
      return "<" + std::string(StatusCodeName(r.status.code())) + ">";
    }
    return r.rows[0][0].ToDisplayString();
  }
  Database db_;
};

TEST_F(StringFunctionsTest, LengthFamily) {
  EXPECT_EQ(Eval("LENGTH('hello')"), "5");
  EXPECT_EQ(Eval("LENGTH('')"), "0");
  EXPECT_EQ(Eval("CHAR_LENGTH('ab')"), "2");
  EXPECT_EQ(Eval("LENGTH(123)"), "3");  // lenient coercion
}

TEST_F(StringFunctionsTest, CaseFamily) {
  EXPECT_EQ(Eval("UPPER('MiXeD')"), "MIXED");
  EXPECT_EQ(Eval("LOWER('MiXeD')"), "mixed");
  EXPECT_EQ(Eval("INITCAP('hello world')"), "Hello World");
}

TEST_F(StringFunctionsTest, ConcatFamily) {
  EXPECT_EQ(Eval("CONCAT('a', 'b', 'c')"), "abc");
  EXPECT_EQ(Eval("CONCAT('n', 42)"), "n42");
  EXPECT_EQ(Eval("CONCAT('a', NULL)"), "NULL");          // null-propagating
  EXPECT_EQ(Eval("CONCAT_WS('-', 'a', NULL, 'b')"), "a-b");  // skips NULLs
  EXPECT_EQ(Eval("CONCAT_WS(',', NULL, NULL)"), "");
}

TEST_F(StringFunctionsTest, SubstrBoundaries) {
  EXPECT_EQ(Eval("SUBSTR('abcdef', 2, 3)"), "bcd");
  EXPECT_EQ(Eval("SUBSTR('abcdef', 2)"), "bcdef");
  EXPECT_EQ(Eval("SUBSTR('abcdef', 0)"), "");        // position 0 → empty
  EXPECT_EQ(Eval("SUBSTR('abcdef', -2)"), "ef");     // negative from end
  EXPECT_EQ(Eval("SUBSTR('abcdef', -100)"), "");     // before the start
  EXPECT_EQ(Eval("SUBSTR('abcdef', 100)"), "");      // past the end
  EXPECT_EQ(Eval("SUBSTR('abcdef', 2, 0)"), "");     // zero length
  EXPECT_EQ(Eval("SUBSTR('abcdef', 2, -1)"), "");    // negative length
  EXPECT_EQ(Eval("SUBSTR('abcdef', 2, 100)"), "bcdef");
}

TEST_F(StringFunctionsTest, LeftRight) {
  EXPECT_EQ(Eval("LEFT('abcdef', 3)"), "abc");
  EXPECT_EQ(Eval("RIGHT('abcdef', 3)"), "def");
  EXPECT_EQ(Eval("LEFT('abc', 0)"), "");
  EXPECT_EQ(Eval("LEFT('abc', -1)"), "");
  EXPECT_EQ(Eval("RIGHT('abc', 100)"), "abc");
}

TEST_F(StringFunctionsTest, PadBoundaries) {
  EXPECT_EQ(Eval("LPAD('5', 3, '0')"), "005");
  EXPECT_EQ(Eval("RPAD('5', 3, '0')"), "500");
  EXPECT_EQ(Eval("LPAD('abc', 2, '0')"), "ab");   // truncating pad
  EXPECT_EQ(Eval("LPAD('a', 5, 'xy')"), "xyxya"); // multi-char pad
  EXPECT_EQ(Eval("LPAD('a', -1, '0')"), "NULL");  // negative target
  EXPECT_EQ(Eval("LPAD('a', 5, '')"), "");        // empty pad
  EXPECT_EQ(Eval("LPAD('a', 3)"), "  a");         // default space pad
}

TEST_F(StringFunctionsTest, TrimFamily) {
  EXPECT_EQ(Eval("TRIM('  a  ')"), "a");
  EXPECT_EQ(Eval("LTRIM('  a  ')"), "a  ");
  EXPECT_EQ(Eval("RTRIM('  a  ')"), "  a");
  EXPECT_EQ(Eval("TRIM('    ')"), "");
}

TEST_F(StringFunctionsTest, ReplaceBoundaries) {
  EXPECT_EQ(Eval("REPLACE('banana', 'a', 'o')"), "bonono");
  EXPECT_EQ(Eval("REPLACE('banana', '', 'x')"), "banana");  // empty needle
  EXPECT_EQ(Eval("REPLACE('banana', 'an', '')"), "ba");
  EXPECT_EQ(Eval("REPLACE('aaa', 'aa', 'b')"), "ba");  // non-overlapping
}

TEST_F(StringFunctionsTest, RepeatBoundaries) {
  EXPECT_EQ(Eval("REPEAT('ab', 3)"), "ababab");
  EXPECT_EQ(Eval("REPEAT('ab', 0)"), "");
  EXPECT_EQ(Eval("REPEAT('ab', -1)"), "");
  EXPECT_EQ(Eval("REPEAT('a', 9999999999)"), "<RESOURCE_EXHAUSTED>");
  EXPECT_EQ(Eval("REPEAT('', 1000)"), "");
}

TEST_F(StringFunctionsTest, SearchFamily) {
  EXPECT_EQ(Eval("INSTR('banana', 'na')"), "3");
  EXPECT_EQ(Eval("INSTR('banana', 'xyz')"), "0");
  EXPECT_EQ(Eval("INSTR('banana', '')"), "1");
  EXPECT_EQ(Eval("LOCATE('na', 'banana', 4)"), "5");
  EXPECT_EQ(Eval("LOCATE('na', 'banana', 100)"), "0");
  EXPECT_EQ(Eval("LOCATE('na', 'banana', 0)"), "0");  // invalid start
}

TEST_F(StringFunctionsTest, AsciiChr) {
  EXPECT_EQ(Eval("ASCII('A')"), "65");
  EXPECT_EQ(Eval("ASCII('')"), "0");
  EXPECT_EQ(Eval("CHR(65)"), "A");
  EXPECT_EQ(Eval("CHR(-1)"), "<INVALID_ARGUMENT>");
  EXPECT_EQ(Eval("LENGTH(CHR(955))"), "2");  // UTF-8 two-byter (lambda)
}

TEST_F(StringFunctionsTest, FormatClampsFractionDigits) {
  EXPECT_EQ(Eval("FORMAT(1234.567, 2)"), "1,234.57");
  EXPECT_EQ(Eval("FORMAT(1234567, 0)"), "1,234,567");
  EXPECT_EQ(Eval("FORMAT(0, 3)"), "0.000");
  EXPECT_EQ(Eval("FORMAT(-1234.5, 1)"), "-1,234.5");
  // The fixed MDEV-23415 behaviour: 50 digits clamp at 38, no scientific
  // notation, no overflow.
  const std::string out = Eval("FORMAT('0', 50, 'de_DE')");
  EXPECT_EQ(out, "0." + std::string(38, '0'));
  EXPECT_EQ(Eval("FORMAT(1, 2, 'bogus')"), "<INVALID_ARGUMENT>");
}

TEST_F(StringFunctionsTest, HexUnhexRoundTrip) {
  EXPECT_EQ(Eval("HEX('abc')"), "616263");
  EXPECT_EQ(Eval("HEX(255)"), "FF");
  EXPECT_EQ(Eval("UNHEX('616263')"), "x'616263'");
  EXPECT_EQ(Eval("UNHEX('ABC')"), "NULL");   // odd length
  EXPECT_EQ(Eval("UNHEX('XYZ1')"), "NULL");  // invalid digits
}

TEST_F(StringFunctionsTest, Base64RoundTrip) {
  EXPECT_EQ(Eval("TO_BASE64('abc')"), "YWJj");
  EXPECT_EQ(Eval("TO_BASE64('a')"), "YQ==");
  EXPECT_EQ(Eval("CAST(FROM_BASE64('YWJj') AS STRING)"), "abc");
  EXPECT_EQ(Eval("FROM_BASE64('!!!')"), "NULL");
}

TEST_F(StringFunctionsTest, MiscFunctions) {
  EXPECT_EQ(Eval("REVERSE('abc')"), "cba");
  EXPECT_EQ(Eval("SPACE(3)"), "   ");
  EXPECT_EQ(Eval("SPACE(-1)"), "");
  EXPECT_EQ(Eval("STRCMP('a', 'b')"), "-1");
  EXPECT_EQ(Eval("STRCMP('b', 'b')"), "0");
  EXPECT_EQ(Eval("ELT(2, 'a', 'b', 'c')"), "b");
  EXPECT_EQ(Eval("ELT(9, 'a', 'b')"), "NULL");
  EXPECT_EQ(Eval("FIELD('b', 'a', 'b')"), "2");
  EXPECT_EQ(Eval("FIELD('z', 'a', 'b')"), "0");
  EXPECT_EQ(Eval("QUOTE('it''s')"), "'it''s'");
  EXPECT_EQ(Eval("SOUNDEX('Robert')"), "R163");
  EXPECT_EQ(Eval("SOUNDEX('')"), "");
}

TEST_F(StringFunctionsTest, SplitPartBoundaries) {
  EXPECT_EQ(Eval("SPLIT_PART('a,b,c', ',', 2)"), "b");
  EXPECT_EQ(Eval("SPLIT_PART('a,b,c', ',', -1)"), "c");
  EXPECT_EQ(Eval("SPLIT_PART('a,b,c', ',', 9)"), "");
  EXPECT_EQ(Eval("SPLIT_PART('a,b,c', ',', 0)"), "<INVALID_ARGUMENT>");
  EXPECT_EQ(Eval("SPLIT_PART('abc', '', 1)"), "abc");
}

TEST_F(StringFunctionsTest, TranslateDeletesUnmapped) {
  EXPECT_EQ(Eval("TRANSLATE('abc', 'abc', 'xyz')"), "xyz");
  EXPECT_EQ(Eval("TRANSLATE('abc', 'ac', 'x')"), "xb");  // c deleted
  EXPECT_EQ(Eval("TRANSLATE('abc', '', '')"), "abc");
}

TEST_F(StringFunctionsTest, RegexpLike) {
  EXPECT_EQ(Eval("REGEXP_LIKE('abc', 'a.c')"), "TRUE");
  EXPECT_EQ(Eval("REGEXP_LIKE('abc', '^b')"), "FALSE");
  EXPECT_EQ(Eval("REGEXP_LIKE('abc', 'c$')"), "TRUE");
  EXPECT_EQ(Eval("REGEXP_LIKE('aaab', 'a*b')"), "TRUE");
  EXPECT_EQ(Eval("REGEXP_LIKE('xyz', '[a-c]')"), "FALSE");
  EXPECT_EQ(Eval("REGEXP_LIKE('b', '[^a]')"), "TRUE");
  EXPECT_EQ(Eval("REGEXP_LIKE('abc', '')"), "TRUE");
}

TEST_F(StringFunctionsTest, RegexpCve20160773Shape) {
  // Codepoints at INT32_MAX in escapes are rejected, not overflowed — the
  // patched PostgreSQL behaviour.
  EXPECT_EQ(Eval("REGEXP_LIKE('abc', '[\\x61-\\x7a]')"), "TRUE");
  EXPECT_EQ(Eval("REGEXP_LIKE('abc', '[\\x41-\\x7fffffff]')"), "<INVALID_ARGUMENT>");
  EXPECT_EQ(Eval("REGEXP_LIKE('abc', '\\x7fffffff')"), "<INVALID_ARGUMENT>");
  EXPECT_EQ(Eval("REGEXP_LIKE('abc', '[z-a]')"), "<INVALID_ARGUMENT>");  // bad range
}

TEST_F(StringFunctionsTest, RegexpReplace) {
  EXPECT_EQ(Eval("REGEXP_REPLACE('banana', 'an', 'X')"), "bXXa");
  EXPECT_EQ(Eval("REGEXP_REPLACE('abc', 'z', 'X')"), "abc");
  EXPECT_EQ(Eval("REGEXP_REPLACE('abc', '', 'X')"), "abc");
}

TEST_F(StringFunctionsTest, DigestsAreStable) {
  EXPECT_EQ(Eval("MD5('abc')"), Eval("MD5('abc')"));
  EXPECT_NE(Eval("MD5('abc')"), Eval("MD5('abd')"));
  EXPECT_EQ(Eval("LENGTH(MD5('abc'))"), "32");
  EXPECT_EQ(Eval("LENGTH(SHA1('abc'))"), "40");
}

}  // namespace
}  // namespace soft
