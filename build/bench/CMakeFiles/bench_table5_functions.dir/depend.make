# Empty dependencies file for bench_table5_functions.
# This may be replaced when dependencies are built.
