file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_functions.dir/bench_table5_functions.cc.o"
  "CMakeFiles/bench_table5_functions.dir/bench_table5_functions.cc.o.d"
  "bench_table5_functions"
  "bench_table5_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
