# Empty dependencies file for bench_bugs_budget.
# This may be replaced when dependencies are built.
