file(REMOVE_RECURSE
  "CMakeFiles/bench_bugs_budget.dir/bench_bugs_budget.cc.o"
  "CMakeFiles/bench_bugs_budget.dir/bench_bugs_budget.cc.o.d"
  "bench_bugs_budget"
  "bench_bugs_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bugs_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
