file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_branches.dir/bench_table6_branches.cc.o"
  "CMakeFiles/bench_table6_branches.dir/bench_table6_branches.cc.o.d"
  "bench_table6_branches"
  "bench_table6_branches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_branches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
