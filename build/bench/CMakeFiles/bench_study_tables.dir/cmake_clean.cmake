file(REMOVE_RECURSE
  "CMakeFiles/bench_study_tables.dir/bench_study_tables.cc.o"
  "CMakeFiles/bench_study_tables.dir/bench_study_tables.cc.o.d"
  "bench_study_tables"
  "bench_study_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_study_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
