# Empty dependencies file for bench_study_tables.
# This may be replaced when dependencies are built.
