file(REMOVE_RECURSE
  "CMakeFiles/string_functions_test.dir/string_functions_test.cc.o"
  "CMakeFiles/string_functions_test.dir/string_functions_test.cc.o.d"
  "string_functions_test"
  "string_functions_test.pdb"
  "string_functions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/string_functions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
