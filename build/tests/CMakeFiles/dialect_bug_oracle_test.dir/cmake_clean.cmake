file(REMOVE_RECURSE
  "CMakeFiles/dialect_bug_oracle_test.dir/dialect_bug_oracle_test.cc.o"
  "CMakeFiles/dialect_bug_oracle_test.dir/dialect_bug_oracle_test.cc.o.d"
  "dialect_bug_oracle_test"
  "dialect_bug_oracle_test.pdb"
  "dialect_bug_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dialect_bug_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
