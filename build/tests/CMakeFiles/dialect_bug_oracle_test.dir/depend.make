# Empty dependencies file for dialect_bug_oracle_test.
# This may be replaced when dependencies are built.
