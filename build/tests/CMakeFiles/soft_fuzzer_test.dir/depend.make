# Empty dependencies file for soft_fuzzer_test.
# This may be replaced when dependencies are built.
