
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/soft_fuzzer_test.cc" "tests/CMakeFiles/soft_fuzzer_test.dir/soft_fuzzer_test.cc.o" "gcc" "tests/CMakeFiles/soft_fuzzer_test.dir/soft_fuzzer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/soft/CMakeFiles/soft_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dialects/CMakeFiles/soft_dialects.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/soft_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sqlparser/CMakeFiles/soft_sqlparser.dir/DependInfo.cmake"
  "/root/repo/build/src/sqlast/CMakeFiles/soft_sqlast.dir/DependInfo.cmake"
  "/root/repo/build/src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/soft_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/sqlvalue/CMakeFiles/soft_sqlvalue.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/soft_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/soft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
