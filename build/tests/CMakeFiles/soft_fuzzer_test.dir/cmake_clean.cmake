file(REMOVE_RECURSE
  "CMakeFiles/soft_fuzzer_test.dir/soft_fuzzer_test.cc.o"
  "CMakeFiles/soft_fuzzer_test.dir/soft_fuzzer_test.cc.o.d"
  "soft_fuzzer_test"
  "soft_fuzzer_test.pdb"
  "soft_fuzzer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_fuzzer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
