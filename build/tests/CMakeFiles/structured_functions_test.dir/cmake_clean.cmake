file(REMOVE_RECURSE
  "CMakeFiles/structured_functions_test.dir/structured_functions_test.cc.o"
  "CMakeFiles/structured_functions_test.dir/structured_functions_test.cc.o.d"
  "structured_functions_test"
  "structured_functions_test.pdb"
  "structured_functions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structured_functions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
