# Empty compiler generated dependencies file for structured_functions_test.
# This may be replaced when dependencies are built.
