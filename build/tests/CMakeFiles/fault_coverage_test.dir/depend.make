# Empty dependencies file for fault_coverage_test.
# This may be replaced when dependencies are built.
