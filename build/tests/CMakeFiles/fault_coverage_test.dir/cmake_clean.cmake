file(REMOVE_RECURSE
  "CMakeFiles/fault_coverage_test.dir/fault_coverage_test.cc.o"
  "CMakeFiles/fault_coverage_test.dir/fault_coverage_test.cc.o.d"
  "fault_coverage_test"
  "fault_coverage_test.pdb"
  "fault_coverage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
