file(REMOVE_RECURSE
  "CMakeFiles/value_cast_test.dir/value_cast_test.cc.o"
  "CMakeFiles/value_cast_test.dir/value_cast_test.cc.o.d"
  "value_cast_test"
  "value_cast_test.pdb"
  "value_cast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_cast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
