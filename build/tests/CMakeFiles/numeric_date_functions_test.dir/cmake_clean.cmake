file(REMOVE_RECURSE
  "CMakeFiles/numeric_date_functions_test.dir/numeric_date_functions_test.cc.o"
  "CMakeFiles/numeric_date_functions_test.dir/numeric_date_functions_test.cc.o.d"
  "numeric_date_functions_test"
  "numeric_date_functions_test.pdb"
  "numeric_date_functions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numeric_date_functions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
