# Empty compiler generated dependencies file for numeric_date_functions_test.
# This may be replaced when dependencies are built.
