file(REMOVE_RECURSE
  "CMakeFiles/datetime_inet_geometry_test.dir/datetime_inet_geometry_test.cc.o"
  "CMakeFiles/datetime_inet_geometry_test.dir/datetime_inet_geometry_test.cc.o.d"
  "datetime_inet_geometry_test"
  "datetime_inet_geometry_test.pdb"
  "datetime_inet_geometry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datetime_inet_geometry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
