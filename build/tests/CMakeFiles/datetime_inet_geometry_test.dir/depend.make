# Empty dependencies file for datetime_inet_geometry_test.
# This may be replaced when dependencies are built.
