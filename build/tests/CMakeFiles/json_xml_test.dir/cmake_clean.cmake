file(REMOVE_RECURSE
  "CMakeFiles/json_xml_test.dir/json_xml_test.cc.o"
  "CMakeFiles/json_xml_test.dir/json_xml_test.cc.o.d"
  "json_xml_test"
  "json_xml_test.pdb"
  "json_xml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_xml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
