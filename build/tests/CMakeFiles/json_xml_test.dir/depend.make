# Empty dependencies file for json_xml_test.
# This may be replaced when dependencies are built.
