# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/engine_basic_test[1]_include.cmake")
include("/root/repo/build/tests/dialect_bug_oracle_test[1]_include.cmake")
include("/root/repo/build/tests/soft_fuzzer_test[1]_include.cmake")
include("/root/repo/build/tests/decimal_test[1]_include.cmake")
include("/root/repo/build/tests/json_xml_test[1]_include.cmake")
include("/root/repo/build/tests/datetime_inet_geometry_test[1]_include.cmake")
include("/root/repo/build/tests/value_cast_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/study_test[1]_include.cmake")
include("/root/repo/build/tests/patterns_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/string_functions_test[1]_include.cmake")
include("/root/repo/build/tests/numeric_date_functions_test[1]_include.cmake")
include("/root/repo/build/tests/structured_functions_test[1]_include.cmake")
include("/root/repo/build/tests/fault_coverage_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/semantics_property_test[1]_include.cmake")
