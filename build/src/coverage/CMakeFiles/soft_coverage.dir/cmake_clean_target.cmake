file(REMOVE_RECURSE
  "libsoft_coverage.a"
)
