# Empty compiler generated dependencies file for soft_coverage.
# This may be replaced when dependencies are built.
