file(REMOVE_RECURSE
  "CMakeFiles/soft_coverage.dir/coverage.cc.o"
  "CMakeFiles/soft_coverage.dir/coverage.cc.o.d"
  "libsoft_coverage.a"
  "libsoft_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
