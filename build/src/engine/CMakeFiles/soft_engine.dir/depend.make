# Empty dependencies file for soft_engine.
# This may be replaced when dependencies are built.
