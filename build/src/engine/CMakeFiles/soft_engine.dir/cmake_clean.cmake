file(REMOVE_RECURSE
  "CMakeFiles/soft_engine.dir/database.cc.o"
  "CMakeFiles/soft_engine.dir/database.cc.o.d"
  "CMakeFiles/soft_engine.dir/evaluator.cc.o"
  "CMakeFiles/soft_engine.dir/evaluator.cc.o.d"
  "CMakeFiles/soft_engine.dir/optimizer.cc.o"
  "CMakeFiles/soft_engine.dir/optimizer.cc.o.d"
  "CMakeFiles/soft_engine.dir/select_executor.cc.o"
  "CMakeFiles/soft_engine.dir/select_executor.cc.o.d"
  "libsoft_engine.a"
  "libsoft_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
