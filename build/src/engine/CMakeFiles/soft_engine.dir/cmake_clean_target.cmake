file(REMOVE_RECURSE
  "libsoft_engine.a"
)
