file(REMOVE_RECURSE
  "CMakeFiles/soft_sqlast.dir/ast.cc.o"
  "CMakeFiles/soft_sqlast.dir/ast.cc.o.d"
  "libsoft_sqlast.a"
  "libsoft_sqlast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_sqlast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
