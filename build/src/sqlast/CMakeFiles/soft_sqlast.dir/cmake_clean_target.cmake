file(REMOVE_RECURSE
  "libsoft_sqlast.a"
)
