# Empty dependencies file for soft_sqlast.
# This may be replaced when dependencies are built.
