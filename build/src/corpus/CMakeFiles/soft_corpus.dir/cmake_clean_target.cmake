file(REMOVE_RECURSE
  "libsoft_corpus.a"
)
