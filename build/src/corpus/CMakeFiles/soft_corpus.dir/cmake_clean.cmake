file(REMOVE_RECURSE
  "CMakeFiles/soft_corpus.dir/study.cc.o"
  "CMakeFiles/soft_corpus.dir/study.cc.o.d"
  "libsoft_corpus.a"
  "libsoft_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
