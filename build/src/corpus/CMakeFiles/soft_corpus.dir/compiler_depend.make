# Empty compiler generated dependencies file for soft_corpus.
# This may be replaced when dependencies are built.
