file(REMOVE_RECURSE
  "CMakeFiles/soft_util.dir/rng.cc.o"
  "CMakeFiles/soft_util.dir/rng.cc.o.d"
  "CMakeFiles/soft_util.dir/status.cc.o"
  "CMakeFiles/soft_util.dir/status.cc.o.d"
  "CMakeFiles/soft_util.dir/str_util.cc.o"
  "CMakeFiles/soft_util.dir/str_util.cc.o.d"
  "libsoft_util.a"
  "libsoft_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
