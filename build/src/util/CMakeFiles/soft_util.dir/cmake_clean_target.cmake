file(REMOVE_RECURSE
  "libsoft_util.a"
)
