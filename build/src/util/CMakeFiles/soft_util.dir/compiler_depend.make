# Empty compiler generated dependencies file for soft_util.
# This may be replaced when dependencies are built.
