file(REMOVE_RECURSE
  "CMakeFiles/soft_dialects.dir/clickhouse.cc.o"
  "CMakeFiles/soft_dialects.dir/clickhouse.cc.o.d"
  "CMakeFiles/soft_dialects.dir/dialects.cc.o"
  "CMakeFiles/soft_dialects.dir/dialects.cc.o.d"
  "CMakeFiles/soft_dialects.dir/duckdb.cc.o"
  "CMakeFiles/soft_dialects.dir/duckdb.cc.o.d"
  "CMakeFiles/soft_dialects.dir/mariadb.cc.o"
  "CMakeFiles/soft_dialects.dir/mariadb.cc.o.d"
  "CMakeFiles/soft_dialects.dir/monetdb.cc.o"
  "CMakeFiles/soft_dialects.dir/monetdb.cc.o.d"
  "CMakeFiles/soft_dialects.dir/mysql.cc.o"
  "CMakeFiles/soft_dialects.dir/mysql.cc.o.d"
  "CMakeFiles/soft_dialects.dir/poc.cc.o"
  "CMakeFiles/soft_dialects.dir/poc.cc.o.d"
  "CMakeFiles/soft_dialects.dir/postgresql.cc.o"
  "CMakeFiles/soft_dialects.dir/postgresql.cc.o.d"
  "CMakeFiles/soft_dialects.dir/virtuoso.cc.o"
  "CMakeFiles/soft_dialects.dir/virtuoso.cc.o.d"
  "libsoft_dialects.a"
  "libsoft_dialects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_dialects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
