# Empty dependencies file for soft_dialects.
# This may be replaced when dependencies are built.
