file(REMOVE_RECURSE
  "libsoft_dialects.a"
)
