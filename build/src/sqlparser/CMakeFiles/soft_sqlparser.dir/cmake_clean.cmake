file(REMOVE_RECURSE
  "CMakeFiles/soft_sqlparser.dir/lexer.cc.o"
  "CMakeFiles/soft_sqlparser.dir/lexer.cc.o.d"
  "CMakeFiles/soft_sqlparser.dir/parser.cc.o"
  "CMakeFiles/soft_sqlparser.dir/parser.cc.o.d"
  "libsoft_sqlparser.a"
  "libsoft_sqlparser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_sqlparser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
