file(REMOVE_RECURSE
  "libsoft_sqlparser.a"
)
