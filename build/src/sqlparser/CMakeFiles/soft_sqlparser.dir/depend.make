# Empty dependencies file for soft_sqlparser.
# This may be replaced when dependencies are built.
