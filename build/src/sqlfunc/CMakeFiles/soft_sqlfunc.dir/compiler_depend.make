# Empty compiler generated dependencies file for soft_sqlfunc.
# This may be replaced when dependencies are built.
