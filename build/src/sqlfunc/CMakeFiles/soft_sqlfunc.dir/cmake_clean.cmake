file(REMOVE_RECURSE
  "CMakeFiles/soft_sqlfunc.dir/aggregate_functions.cc.o"
  "CMakeFiles/soft_sqlfunc.dir/aggregate_functions.cc.o.d"
  "CMakeFiles/soft_sqlfunc.dir/array_map_functions.cc.o"
  "CMakeFiles/soft_sqlfunc.dir/array_map_functions.cc.o.d"
  "CMakeFiles/soft_sqlfunc.dir/casting_functions.cc.o"
  "CMakeFiles/soft_sqlfunc.dir/casting_functions.cc.o.d"
  "CMakeFiles/soft_sqlfunc.dir/condition_functions.cc.o"
  "CMakeFiles/soft_sqlfunc.dir/condition_functions.cc.o.d"
  "CMakeFiles/soft_sqlfunc.dir/date_functions.cc.o"
  "CMakeFiles/soft_sqlfunc.dir/date_functions.cc.o.d"
  "CMakeFiles/soft_sqlfunc.dir/function.cc.o"
  "CMakeFiles/soft_sqlfunc.dir/function.cc.o.d"
  "CMakeFiles/soft_sqlfunc.dir/json_functions.cc.o"
  "CMakeFiles/soft_sqlfunc.dir/json_functions.cc.o.d"
  "CMakeFiles/soft_sqlfunc.dir/math_functions.cc.o"
  "CMakeFiles/soft_sqlfunc.dir/math_functions.cc.o.d"
  "CMakeFiles/soft_sqlfunc.dir/sequence_functions.cc.o"
  "CMakeFiles/soft_sqlfunc.dir/sequence_functions.cc.o.d"
  "CMakeFiles/soft_sqlfunc.dir/spatial_functions.cc.o"
  "CMakeFiles/soft_sqlfunc.dir/spatial_functions.cc.o.d"
  "CMakeFiles/soft_sqlfunc.dir/string_functions.cc.o"
  "CMakeFiles/soft_sqlfunc.dir/string_functions.cc.o.d"
  "CMakeFiles/soft_sqlfunc.dir/system_functions.cc.o"
  "CMakeFiles/soft_sqlfunc.dir/system_functions.cc.o.d"
  "CMakeFiles/soft_sqlfunc.dir/xml_functions.cc.o"
  "CMakeFiles/soft_sqlfunc.dir/xml_functions.cc.o.d"
  "libsoft_sqlfunc.a"
  "libsoft_sqlfunc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_sqlfunc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
