file(REMOVE_RECURSE
  "libsoft_sqlfunc.a"
)
