
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sqlfunc/aggregate_functions.cc" "src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/aggregate_functions.cc.o" "gcc" "src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/aggregate_functions.cc.o.d"
  "/root/repo/src/sqlfunc/array_map_functions.cc" "src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/array_map_functions.cc.o" "gcc" "src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/array_map_functions.cc.o.d"
  "/root/repo/src/sqlfunc/casting_functions.cc" "src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/casting_functions.cc.o" "gcc" "src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/casting_functions.cc.o.d"
  "/root/repo/src/sqlfunc/condition_functions.cc" "src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/condition_functions.cc.o" "gcc" "src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/condition_functions.cc.o.d"
  "/root/repo/src/sqlfunc/date_functions.cc" "src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/date_functions.cc.o" "gcc" "src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/date_functions.cc.o.d"
  "/root/repo/src/sqlfunc/function.cc" "src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/function.cc.o" "gcc" "src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/function.cc.o.d"
  "/root/repo/src/sqlfunc/json_functions.cc" "src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/json_functions.cc.o" "gcc" "src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/json_functions.cc.o.d"
  "/root/repo/src/sqlfunc/math_functions.cc" "src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/math_functions.cc.o" "gcc" "src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/math_functions.cc.o.d"
  "/root/repo/src/sqlfunc/sequence_functions.cc" "src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/sequence_functions.cc.o" "gcc" "src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/sequence_functions.cc.o.d"
  "/root/repo/src/sqlfunc/spatial_functions.cc" "src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/spatial_functions.cc.o" "gcc" "src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/spatial_functions.cc.o.d"
  "/root/repo/src/sqlfunc/string_functions.cc" "src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/string_functions.cc.o" "gcc" "src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/string_functions.cc.o.d"
  "/root/repo/src/sqlfunc/system_functions.cc" "src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/system_functions.cc.o" "gcc" "src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/system_functions.cc.o.d"
  "/root/repo/src/sqlfunc/xml_functions.cc" "src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/xml_functions.cc.o" "gcc" "src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/xml_functions.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sqlvalue/CMakeFiles/soft_sqlvalue.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/soft_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/soft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
