file(REMOVE_RECURSE
  "CMakeFiles/soft_sqlvalue.dir/cast.cc.o"
  "CMakeFiles/soft_sqlvalue.dir/cast.cc.o.d"
  "CMakeFiles/soft_sqlvalue.dir/datetime.cc.o"
  "CMakeFiles/soft_sqlvalue.dir/datetime.cc.o.d"
  "CMakeFiles/soft_sqlvalue.dir/decimal.cc.o"
  "CMakeFiles/soft_sqlvalue.dir/decimal.cc.o.d"
  "CMakeFiles/soft_sqlvalue.dir/geometry.cc.o"
  "CMakeFiles/soft_sqlvalue.dir/geometry.cc.o.d"
  "CMakeFiles/soft_sqlvalue.dir/inet.cc.o"
  "CMakeFiles/soft_sqlvalue.dir/inet.cc.o.d"
  "CMakeFiles/soft_sqlvalue.dir/json.cc.o"
  "CMakeFiles/soft_sqlvalue.dir/json.cc.o.d"
  "CMakeFiles/soft_sqlvalue.dir/type.cc.o"
  "CMakeFiles/soft_sqlvalue.dir/type.cc.o.d"
  "CMakeFiles/soft_sqlvalue.dir/value.cc.o"
  "CMakeFiles/soft_sqlvalue.dir/value.cc.o.d"
  "libsoft_sqlvalue.a"
  "libsoft_sqlvalue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_sqlvalue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
