
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sqlvalue/cast.cc" "src/sqlvalue/CMakeFiles/soft_sqlvalue.dir/cast.cc.o" "gcc" "src/sqlvalue/CMakeFiles/soft_sqlvalue.dir/cast.cc.o.d"
  "/root/repo/src/sqlvalue/datetime.cc" "src/sqlvalue/CMakeFiles/soft_sqlvalue.dir/datetime.cc.o" "gcc" "src/sqlvalue/CMakeFiles/soft_sqlvalue.dir/datetime.cc.o.d"
  "/root/repo/src/sqlvalue/decimal.cc" "src/sqlvalue/CMakeFiles/soft_sqlvalue.dir/decimal.cc.o" "gcc" "src/sqlvalue/CMakeFiles/soft_sqlvalue.dir/decimal.cc.o.d"
  "/root/repo/src/sqlvalue/geometry.cc" "src/sqlvalue/CMakeFiles/soft_sqlvalue.dir/geometry.cc.o" "gcc" "src/sqlvalue/CMakeFiles/soft_sqlvalue.dir/geometry.cc.o.d"
  "/root/repo/src/sqlvalue/inet.cc" "src/sqlvalue/CMakeFiles/soft_sqlvalue.dir/inet.cc.o" "gcc" "src/sqlvalue/CMakeFiles/soft_sqlvalue.dir/inet.cc.o.d"
  "/root/repo/src/sqlvalue/json.cc" "src/sqlvalue/CMakeFiles/soft_sqlvalue.dir/json.cc.o" "gcc" "src/sqlvalue/CMakeFiles/soft_sqlvalue.dir/json.cc.o.d"
  "/root/repo/src/sqlvalue/type.cc" "src/sqlvalue/CMakeFiles/soft_sqlvalue.dir/type.cc.o" "gcc" "src/sqlvalue/CMakeFiles/soft_sqlvalue.dir/type.cc.o.d"
  "/root/repo/src/sqlvalue/value.cc" "src/sqlvalue/CMakeFiles/soft_sqlvalue.dir/value.cc.o" "gcc" "src/sqlvalue/CMakeFiles/soft_sqlvalue.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/soft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
