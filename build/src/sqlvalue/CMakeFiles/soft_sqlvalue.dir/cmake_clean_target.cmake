file(REMOVE_RECURSE
  "libsoft_sqlvalue.a"
)
