# Empty dependencies file for soft_sqlvalue.
# This may be replaced when dependencies are built.
