file(REMOVE_RECURSE
  "libsoft_core.a"
)
