file(REMOVE_RECURSE
  "CMakeFiles/soft_core.dir/boundary_values.cc.o"
  "CMakeFiles/soft_core.dir/boundary_values.cc.o.d"
  "CMakeFiles/soft_core.dir/clause_extension.cc.o"
  "CMakeFiles/soft_core.dir/clause_extension.cc.o.d"
  "CMakeFiles/soft_core.dir/expr_collection.cc.o"
  "CMakeFiles/soft_core.dir/expr_collection.cc.o.d"
  "CMakeFiles/soft_core.dir/logic_oracle.cc.o"
  "CMakeFiles/soft_core.dir/logic_oracle.cc.o.d"
  "CMakeFiles/soft_core.dir/patterns.cc.o"
  "CMakeFiles/soft_core.dir/patterns.cc.o.d"
  "CMakeFiles/soft_core.dir/report.cc.o"
  "CMakeFiles/soft_core.dir/report.cc.o.d"
  "CMakeFiles/soft_core.dir/seeds.cc.o"
  "CMakeFiles/soft_core.dir/seeds.cc.o.d"
  "CMakeFiles/soft_core.dir/soft_fuzzer.cc.o"
  "CMakeFiles/soft_core.dir/soft_fuzzer.cc.o.d"
  "libsoft_core.a"
  "libsoft_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
