
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soft/boundary_values.cc" "src/soft/CMakeFiles/soft_core.dir/boundary_values.cc.o" "gcc" "src/soft/CMakeFiles/soft_core.dir/boundary_values.cc.o.d"
  "/root/repo/src/soft/clause_extension.cc" "src/soft/CMakeFiles/soft_core.dir/clause_extension.cc.o" "gcc" "src/soft/CMakeFiles/soft_core.dir/clause_extension.cc.o.d"
  "/root/repo/src/soft/expr_collection.cc" "src/soft/CMakeFiles/soft_core.dir/expr_collection.cc.o" "gcc" "src/soft/CMakeFiles/soft_core.dir/expr_collection.cc.o.d"
  "/root/repo/src/soft/logic_oracle.cc" "src/soft/CMakeFiles/soft_core.dir/logic_oracle.cc.o" "gcc" "src/soft/CMakeFiles/soft_core.dir/logic_oracle.cc.o.d"
  "/root/repo/src/soft/patterns.cc" "src/soft/CMakeFiles/soft_core.dir/patterns.cc.o" "gcc" "src/soft/CMakeFiles/soft_core.dir/patterns.cc.o.d"
  "/root/repo/src/soft/report.cc" "src/soft/CMakeFiles/soft_core.dir/report.cc.o" "gcc" "src/soft/CMakeFiles/soft_core.dir/report.cc.o.d"
  "/root/repo/src/soft/seeds.cc" "src/soft/CMakeFiles/soft_core.dir/seeds.cc.o" "gcc" "src/soft/CMakeFiles/soft_core.dir/seeds.cc.o.d"
  "/root/repo/src/soft/soft_fuzzer.cc" "src/soft/CMakeFiles/soft_core.dir/soft_fuzzer.cc.o" "gcc" "src/soft/CMakeFiles/soft_core.dir/soft_fuzzer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/soft_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/dialects/CMakeFiles/soft_dialects.dir/DependInfo.cmake"
  "/root/repo/build/src/sqlparser/CMakeFiles/soft_sqlparser.dir/DependInfo.cmake"
  "/root/repo/build/src/sqlast/CMakeFiles/soft_sqlast.dir/DependInfo.cmake"
  "/root/repo/build/src/sqlfunc/CMakeFiles/soft_sqlfunc.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/soft_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/sqlvalue/CMakeFiles/soft_sqlvalue.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/soft_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/soft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
