# Empty dependencies file for soft_core.
# This may be replaced when dependencies are built.
