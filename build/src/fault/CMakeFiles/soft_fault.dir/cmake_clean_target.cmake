file(REMOVE_RECURSE
  "libsoft_fault.a"
)
