# Empty compiler generated dependencies file for soft_fault.
# This may be replaced when dependencies are built.
