file(REMOVE_RECURSE
  "CMakeFiles/soft_fault.dir/fault.cc.o"
  "CMakeFiles/soft_fault.dir/fault.cc.o.d"
  "libsoft_fault.a"
  "libsoft_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
