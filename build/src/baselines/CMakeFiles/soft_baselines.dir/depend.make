# Empty dependencies file for soft_baselines.
# This may be replaced when dependencies are built.
