file(REMOVE_RECURSE
  "libsoft_baselines.a"
)
