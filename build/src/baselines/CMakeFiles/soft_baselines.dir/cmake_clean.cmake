file(REMOVE_RECURSE
  "CMakeFiles/soft_baselines.dir/comparison.cc.o"
  "CMakeFiles/soft_baselines.dir/comparison.cc.o.d"
  "CMakeFiles/soft_baselines.dir/mutsquirrel.cc.o"
  "CMakeFiles/soft_baselines.dir/mutsquirrel.cc.o.d"
  "CMakeFiles/soft_baselines.dir/pqsgen.cc.o"
  "CMakeFiles/soft_baselines.dir/pqsgen.cc.o.d"
  "CMakeFiles/soft_baselines.dir/randsmith.cc.o"
  "CMakeFiles/soft_baselines.dir/randsmith.cc.o.d"
  "libsoft_baselines.a"
  "libsoft_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
