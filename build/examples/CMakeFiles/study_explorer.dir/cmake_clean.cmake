file(REMOVE_RECURSE
  "CMakeFiles/study_explorer.dir/study_explorer.cpp.o"
  "CMakeFiles/study_explorer.dir/study_explorer.cpp.o.d"
  "study_explorer"
  "study_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
