# Empty dependencies file for study_explorer.
# This may be replaced when dependencies are built.
