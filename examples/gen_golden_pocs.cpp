// Regenerates the golden PoC regression corpus (tests/golden/pocs_*.txt):
// one reference SOFT campaign per dialect (seed 1, budget 250 000,
// stop_when_all_bugs_found — the Table 4 configuration), writing one line per
// injected bug, sorted by bug id:
//
//   <bug id>\t<crash type>\t<PoC SQL>
//
// tests/golden_poc_test.cc replays these lines directly against a fresh
// dialect instance, giving a regression net over the whole
// parse→optimize→execute→fault pipeline without a fuzzing run. Rerun this
// tool (./build/examples/gen_golden_pocs [output-dir]) only when the fault
// corpus or the generator intentionally changes, and review the diff.
//
// Also regenerates the wrong-result corpus (tests/golden/logic/
// logic_*.txt): one reference logic campaign per dialect with every oracle
// armed, writing one line per seeded LogicBugSpec, sorted by bug id:
//
//   <bug id>\t<flagging oracle>\t<PoC SQL>
//
// tests/golden_logic_poc_test.cc replays these against a fresh instance and
// asserts each seeded wrong-result bug is still caught — by the same oracle.
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "src/dialects/dialects.h"
#include "src/soft/soft_fuzzer.h"
#include "src/util/io.h"

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "tests/golden";
  bool ok = true;
  int total = 0;
  for (const std::string& dialect : soft::AllDialectNames()) {
    auto db = soft::MakeDialect(dialect);
    soft::SoftFuzzer fuzzer;
    soft::CampaignOptions options;
    options.seed = 1;
    options.max_statements = 250000;
    options.stop_when_all_bugs_found = true;
    soft::CampaignResult result = fuzzer.Run(*db, options);

    const int expected = soft::ExpectedBugCount(dialect);
    if (static_cast<int>(result.unique_bugs.size()) != expected) {
      std::fprintf(stderr, "%s: reference campaign found %zu bugs, expected %d\n",
                   dialect.c_str(), result.unique_bugs.size(), expected);
      ok = false;
    }
    std::sort(result.unique_bugs.begin(), result.unique_bugs.end(),
              [](const soft::FoundBug& a, const soft::FoundBug& b) {
                return a.crash.bug_id < b.crash.bug_id;
              });

    // Build the corpus in memory and publish it atomically: a failed or
    // interrupted regeneration must never leave a truncated golden file for
    // golden_poc_test.cc to silently pass against.
    std::ostringstream out;
    out << "# Golden PoC corpus for " << dialect
        << " — regenerate with examples/gen_golden_pocs.\n"
        << "# Reference SOFT campaign: seed 1, budget 250000. One line per "
           "injected bug:\n"
        << "# <bug id>\\t<crash type>\\t<PoC SQL>\n";
    for (const soft::FoundBug& bug : result.unique_bugs) {
      if (bug.poc_sql.find('\t') != std::string::npos ||
          bug.poc_sql.find('\n') != std::string::npos) {
        std::fprintf(stderr, "%s: PoC for bug %d contains a tab/newline\n",
                     dialect.c_str(), bug.crash.bug_id);
        ok = false;
        continue;
      }
      out << bug.crash.bug_id << '\t' << soft::CrashTypeName(bug.crash.crash) << '\t'
          << bug.poc_sql << '\n';
      ++total;
    }

    const std::string path = out_dir + "/pocs_" + dialect + ".txt";
    if (const soft::Status written = soft::io::WriteFileAtomic(path, out.str());
        !written.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                   written.message().c_str());
      return 1;
    }
    std::printf("%-12s %3zu PoCs -> %s\n", dialect.c_str(), result.unique_bugs.size(),
                path.c_str());
  }
  std::printf("total: %d PoCs\n", total);

  // Wrong-result corpus: the logic-seed PoC cases lead the campaign's case
  // list, so a small budget deterministically covers every seeded spec.
  int logic_total = 0;
  for (const std::string& dialect : soft::AllDialectNames()) {
    auto db = soft::MakeDialect(dialect);
    soft::SoftFuzzer fuzzer;
    soft::CampaignOptions options;
    options.seed = 1;
    options.max_statements = 500;
    options.stop_when_all_bugs_found = false;
    options.logic_oracles = {"all"};
    soft::CampaignResult result = fuzzer.Run(*db, options);

    const int expected = soft::ExpectedLogicBugCount(dialect);
    if (static_cast<int>(result.logic_bugs.size()) != expected) {
      std::fprintf(stderr,
                   "%s: reference logic campaign found %zu bugs, expected %d\n",
                   dialect.c_str(), result.logic_bugs.size(), expected);
      ok = false;
    }
    std::sort(result.logic_bugs.begin(), result.logic_bugs.end(),
              [](const soft::FoundLogicBug& a, const soft::FoundLogicBug& b) {
                return a.info.bug_id < b.info.bug_id;
              });

    std::ostringstream out;
    out << "# Golden wrong-result corpus for " << dialect
        << " — regenerate with examples/gen_golden_pocs.\n"
        << "# Reference logic campaign: seed 1, --oracle=all. One line per "
           "seeded logic bug:\n"
        << "# <bug id>\\t<flagging oracle>\\t<PoC SQL>\n";
    for (const soft::FoundLogicBug& bug : result.logic_bugs) {
      if (bug.poc_sql.find('\t') != std::string::npos ||
          bug.poc_sql.find('\n') != std::string::npos) {
        std::fprintf(stderr, "%s: logic PoC for bug %d contains a tab/newline\n",
                     dialect.c_str(), bug.info.bug_id);
        ok = false;
        continue;
      }
      out << bug.info.bug_id << '\t' << bug.oracle << '\t' << bug.poc_sql << '\n';
      ++logic_total;
    }

    const std::string path = out_dir + "/logic/logic_" + dialect + ".txt";
    if (const soft::Status written = soft::io::WriteFileAtomic(path, out.str());
        !written.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                   written.message().c_str());
      return 1;
    }
    std::printf("%-12s %3zu logic PoCs -> %s\n", dialect.c_str(),
                result.logic_bugs.size(), path.c_str());
  }
  std::printf("total: %d logic PoCs\n", logic_total);
  return ok ? 0 : 1;
}
