// Full bug-hunting campaign over one dialect (the Section 7 workflow):
// collect expressions, generate boundary arguments with all ten patterns,
// execute, and print a bug report per finding.
//
//   $ ./examples/find_bugs [dialect] [budget] [--telemetry=journal.ndjson]
//   $ ./examples/find_bugs virtuoso 100000
//
// --telemetry=<path> writes the campaign's NDJSON event journal (see
// docs/OBSERVABILITY.md) after the run.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <vector>

#include "src/dialects/dialects.h"
#include "src/soft/soft_fuzzer.h"
#include "src/telemetry/journal.h"
#include "src/telemetry/telemetry.h"

int main(int argc, char** argv) {
  std::string telemetry_path;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--telemetry=", 12) == 0) {
      telemetry_path = argv[i] + 12;
    } else {
      positional.push_back(argv[i]);
    }
  }
  const std::string dialect = !positional.empty() ? positional[0] : "virtuoso";
  const int budget = positional.size() > 1 ? std::atoi(positional[1]) : 150000;

  std::unique_ptr<soft::Database> db = soft::MakeDialect(dialect);
  if (db == nullptr) {
    std::fprintf(stderr, "unknown dialect '%s'; options:", dialect.c_str());
    for (const std::string& name : soft::AllDialectNames()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }

  std::printf("=== SOFT bug-hunting campaign ===\n");
  std::printf("target:  %s (%zu functions, strict casts: %s)\n",
              dialect.c_str(), db->registry().size(),
              db->config().cast_options.strict ? "yes" : "no");
  std::printf("budget:  %d statements\n\n", budget);

  soft::SoftFuzzer fuzzer;
  soft::CampaignOptions options;
  options.max_statements = budget;
  options.stop_when_all_bugs_found = true;
  const soft::telemetry::WallTimer campaign_timer;
  const soft::CampaignResult result = fuzzer.Run(*db, options);
  const uint64_t campaign_wall_ns = campaign_timer.ElapsedNs();

  std::printf("campaign finished: %d statements (%d SQL errors, %d crashes observed, "
              "%d resource-limit false positives)\n\n",
              result.statements_executed, result.sql_errors, result.crashes_observed,
              result.false_positives);
  std::printf("coverage: %zu functions triggered, %zu branches covered\n\n",
              result.functions_triggered, result.branches_covered);

  std::map<std::string, int> by_pattern;
  std::map<std::string, int> by_crash;
  std::printf("--- %zu unique bugs (expected for this dialect: %d) ---\n",
              result.unique_bugs.size(), soft::ExpectedBugCount(dialect));
  for (const soft::FoundBug& bug : result.unique_bugs) {
    by_pattern[bug.found_by] += 1;
    by_crash[std::string(soft::CrashTypeName(bug.crash.crash))] += 1;
    std::printf("\nBUG-%s-%d  [%s] in %s (%s stage)\n", dialect.c_str(),
                bug.crash.bug_id, soft::CrashTypeLongName(bug.crash.crash).data(),
                bug.crash.function.c_str(), soft::StageName(bug.crash.stage).data());
    std::printf("  found by pattern %s after %d statements\n", bug.found_by.c_str(),
                bug.statements_until_found);
    std::printf("  PoC: %s\n", bug.poc_sql.c_str());
    std::printf("  %s\n", bug.crash.description.c_str());
  }

  std::printf("\n--- summary ---\nby pattern: ");
  for (const auto& [pattern, count] : by_pattern) {
    std::printf("%s:%d  ", pattern.c_str(), count);
  }
  std::printf("\nby crash type: ");
  for (const auto& [crash, count] : by_crash) {
    std::printf("%s:%d  ", crash.c_str(), count);
  }
  std::printf("\n");

  if (!telemetry_path.empty()) {
    const soft::Status status = soft::telemetry::WriteCampaignJournalFile(
        telemetry_path, options, result, campaign_wall_ns);
    if (!status.ok()) {
      std::fprintf(stderr, "failed to write journal: %s\n",
                   status.message().c_str());
      return 1;
    }
    std::printf("wrote NDJSON journal to %s\n", telemetry_path.c_str());
  }
  return 0;
}
