// Full bug-hunting campaign over one dialect (the Section 7 workflow):
// collect expressions, generate boundary arguments with all ten patterns,
// execute, and print a bug report per finding.
//
//   $ ./examples/find_bugs [dialect] [budget] [flags]
//   $ ./examples/find_bugs virtuoso 100000
//   $ ./examples/find_bugs duckdb 50000 --crash-mode=real --timeout-ms=200 \
//         --telemetry=journal.ndjson
//   $ ./examples/find_bugs --resume=journal.ndjson
//
// Flags:
//   --telemetry=<path>        stream the campaign's NDJSON event journal
//                             (docs/OBSERVABILITY.md) — written live, so an
//                             interrupted run leaves a resumable journal
//   --checkpoint-every=<n>    checkpoint cadence in statements (default 1000
//                             when a journal is written, else off)
//   --timeout-ms=<n>          statement watchdog deadline (docs/ROBUSTNESS.md)
//   --crash-mode=sim|real     realize triggered bugs as simulated results
//                             (default) or as real signals inside forked
//                             workers
//   --resume=<journal>        resume an interrupted campaign from its journal
//                             (dialect/budget/seed come from the journal)
//   --chaos=<spec>            arm failpoints before the campaign, e.g.
//                             --chaos='io.write=error,eval.enter=after:500'
//                             (docs/ROBUSTNESS.md lists modes and sites)
//   --chaos=list              print the failpoint site inventory and exit
//   --chaos=enumerate         run the chaos smoke oracle once per failpoint
//                             (non-zero exit when any site's oracle fails)
//   --chaos=fleet             run the fleet chaos oracle: each fleet.* site
//                             armed once during a real socket campaign, the
//                             merged digest must stay bit-identical
//   --fleet=serve             run the campaign as a fleet coordinator: fork
//                             --workers=<n> worker processes, lease
//                             --units=<k> case-partition work units over
//                             --socket=<path>, merge deterministically
//                             (docs/ROBUSTNESS.md). With --telemetry the
//                             coordinator streams the lease journal, and
//                             --resume=<journal> resumes a killed coordinator
//   --fleet=attach            attach to a serving coordinator as one extra
//                             worker process (needs --socket)
//   --fleet=status            print a serving coordinator's NDJSON status
//                             snapshot and exit (needs --socket)
//   --socket=<path>           fleet Unix-domain socket (serve default:
//                             /tmp/soft_fleet.sock)
//   --workers=<n>             fleet worker processes to fork (default 2;
//                             0 = external attach workers only)
//   --units=<k>               fleet work units (default 8); the merged
//                             outcome digest equals --shards=<k> at any
//                             worker count
//   --lease-ms=<n>            fleet lease deadline (default 10000): a unit
//                             whose worker misses heartbeats this long is
//                             reclaimed and re-granted
//   --shards=<k>              split the campaign across k shards (case
//                             partitioning: the merged result is bit-identical
//                             to the serial run at any budget)
//   --trace=<path>            export a Perfetto-loadable Chrome trace-event
//                             JSON file of the campaign's span tree
//                             (docs/OBSERVABILITY.md, tools/check_trace_json.py)
//   --trace-sample=<n>        trace every nth statement (default 1 when
//                             --trace is given: every statement)
//   --oracle=<names>          run the wrong-result (logic-bug) oracles:
//                             comma list of eet, diff, norec, tlp, or 'all'.
//                             Arms the seeded wrong-result corpus, checks
//                             every successful SELECT, and reports logic
//                             bugs + a shard-invariant `logic digest`.
//                             Requires --crash-mode=sim (the default).
//
// Exit codes: 0 success, 1 bad usage / hard failure, 2 chaos oracle failed,
// 3 campaign finished but its telemetry journal degraded mid-run.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "src/dialects/dialects.h"
#include "src/failpoint/failpoint.h"
#include "src/fleet/coordinator.h"
#include "src/fleet/worker_client.h"
#include "src/soft/chaos.h"
#include "src/soft/logic_oracle.h"
#include "src/soft/resume.h"
#include "src/soft/soft_fuzzer.h"
#include "src/telemetry/journal.h"
#include "src/telemetry/telemetry.h"

namespace {

void PrintUsage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [dialect] [budget] [--telemetry=<path>]\n"
               "          [--checkpoint-every=<n>] [--timeout-ms=<n>]\n"
               "          [--crash-mode=sim|real] [--resume=<journal>]\n"
               "          [--chaos=<spec>|list|enumerate|fleet] [--shards=<k>]\n"
               "          [--trace=<path>] [--trace-sample=<n>]\n"
               "          [--oracle=eet|diff|norec|tlp|all[,...]]\n"
               "          [--fleet=serve|attach|status] [--socket=<path>]\n"
               "          [--workers=<n>] [--units=<k>] [--lease-ms=<n>]\n",
               argv0);
}

int PrintFailpointInventory() {
  std::printf("%-28s %-8s %s\n", "failpoint", "class", "site");
  for (const soft::failpoint::SiteInfo& site : soft::failpoint::kInventory) {
    std::printf("%-28s %-8s %s\n", site.name.data(),
                soft::failpoint::SiteClassName(site.site_class).data(),
                site.where.data());
  }
  std::printf("\nmodes: off | error | prob:<p> | after:<n>[:<fires>] | oom[:<n>]\n");
  std::printf("failpoints compiled %s\n",
              soft::failpoint::kCompiledIn ? "in" : "out (-DSOFT_FAILPOINTS=OFF)");
  return 0;
}

int RunChaosEnumerate(const std::string& dialect, int budget) {
  std::printf("=== chaos enumeration: %s, budget %d per smoke campaign ===\n\n",
              dialect.c_str(), budget);
  const soft::ChaosReport report =
      soft::RunChaosEnumeration(dialect, budget, /*include_worker_sites=*/true);
  if (!report.compiled_in) {
    std::printf("failpoints compiled out; nothing to inject\n");
    return 0;
  }
  for (const soft::ChaosSiteOutcome& outcome : report.outcomes) {
    std::printf("[%s] %-28s %-8s %s\n", outcome.ok ? "ok" : "FAIL",
                outcome.failpoint.c_str(), outcome.site_class.c_str(),
                outcome.detail.c_str());
  }
  std::printf("\n%zu sites, %s\n", report.outcomes.size(),
              report.ok() ? "all oracles held" : "ORACLE FAILURES above");
  return report.ok() ? 0 : 2;
}

int RunFleetChaos(const std::string& dialect, int budget) {
  std::printf("=== fleet chaos enumeration: %s, budget %d per socket campaign ===\n\n",
              dialect.c_str(), budget);
  const soft::ChaosReport report =
      soft::fleet::RunFleetChaosEnumeration(dialect, budget);
  if (!report.compiled_in) {
    std::printf("failpoints compiled out; nothing to inject\n");
    return 0;
  }
  for (const soft::ChaosSiteOutcome& outcome : report.outcomes) {
    std::printf("[%s] %-28s %-8s %s\n", outcome.ok ? "ok" : "FAIL",
                outcome.failpoint.c_str(), outcome.site_class.c_str(),
                outcome.detail.c_str());
  }
  std::printf("\n%zu fleet sites, %s\n", report.outcomes.size(),
              report.ok() ? "all oracles held" : "ORACLE FAILURES above");
  return report.ok() ? 0 : 2;
}

bool ParseIntFlag(const char* arg, const char* name, int* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) {
    return false;
  }
  *out = std::atoi(arg + len);
  return true;
}

// Splits a comma-separated --oracle= value; empty items are rejected by the
// IsKnownLogicOracle check in main (an empty token is never a known oracle).
std::vector<std::string> SplitCommaList(const std::string& value) {
  std::vector<std::string> items;
  size_t start = 0;
  while (start <= value.size()) {
    const size_t comma = value.find(',', start);
    if (comma == std::string::npos) {
      items.push_back(value.substr(start));
      break;
    }
    items.push_back(value.substr(start, comma - start));
    start = comma + 1;
  }
  return items;
}

}  // namespace

int main(int argc, char** argv) {
  std::string telemetry_path;
  std::string resume_path;
  std::string chaos_spec;
  std::string trace_path;
  std::string crash_mode = "sim";
  std::string oracle_value;
  std::string fleet_mode;
  std::string socket_path;
  int timeout_ms = 0;
  int checkpoint_every = -1;  // -1: default (1000 with a journal, else 0)
  int trace_sample = 0;       // 0: default (1 when --trace is given, else off)
  int shards = 1;
  int workers = 2;
  int units = 0;
  int lease_ms = 10000;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--telemetry=", 12) == 0) {
      telemetry_path = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--resume=", 9) == 0) {
      resume_path = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--chaos=", 8) == 0) {
      chaos_spec = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--crash-mode=", 13) == 0) {
      crash_mode = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--oracle=", 9) == 0) {
      oracle_value = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--fleet=", 8) == 0) {
      fleet_mode = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--socket=", 9) == 0) {
      socket_path = argv[i] + 9;
    } else if (ParseIntFlag(argv[i], "--timeout-ms=", &timeout_ms) ||
               ParseIntFlag(argv[i], "--checkpoint-every=", &checkpoint_every) ||
               ParseIntFlag(argv[i], "--trace-sample=", &trace_sample) ||
               ParseIntFlag(argv[i], "--shards=", &shards) ||
               ParseIntFlag(argv[i], "--workers=", &workers) ||
               ParseIntFlag(argv[i], "--units=", &units) ||
               ParseIntFlag(argv[i], "--lease-ms=", &lease_ms)) {
      // parsed
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      PrintUsage(argv[0]);
      return 1;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (crash_mode != "sim" && crash_mode != "real") {
    std::fprintf(stderr, "--crash-mode must be 'sim' or 'real' (got '%s')\n",
                 crash_mode.c_str());
    PrintUsage(argv[0]);
    return 1;
  }
  if (timeout_ms < 0) {
    std::fprintf(stderr, "--timeout-ms must be >= 0\n");
    return 1;
  }
  if (trace_sample < 0) {
    std::fprintf(stderr, "--trace-sample must be >= 0\n");
    return 1;
  }
  if (shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return 1;
  }
  if (!fleet_mode.empty() && fleet_mode != "serve" && fleet_mode != "attach" &&
      fleet_mode != "status") {
    std::fprintf(stderr, "--fleet must be serve, attach, or status (got '%s')\n",
                 fleet_mode.c_str());
    return 1;
  }
  if ((fleet_mode == "attach" || fleet_mode == "status") && socket_path.empty()) {
    std::fprintf(stderr, "--fleet=%s needs --socket=<path>\n", fleet_mode.c_str());
    return 1;
  }
  if (fleet_mode == "serve") {
    if (crash_mode == "real") {
      std::fprintf(stderr,
                   "--fleet=serve runs simulated crash realization (workers are "
                   "already process isolation); drop --crash-mode=real\n");
      return 1;
    }
    if (shards != 1) {
      std::fprintf(stderr,
                   "--fleet=serve partitions by --units, not --shards; drop "
                   "--shards\n");
      return 1;
    }
    if (workers < 0 || units < 0 || lease_ms <= 0) {
      std::fprintf(stderr, "--workers/--units must be >= 0, --lease-ms > 0\n");
      return 1;
    }
  }
  if (trace_path.empty() && trace_sample > 0) {
    std::fprintf(stderr, "--trace-sample needs --trace=<path>\n");
    return 1;
  }
  if (!resume_path.empty() && shards != 1) {
    std::fprintf(stderr, "--resume replays a single-shard campaign; drop --shards\n");
    return 1;
  }
  std::vector<std::string> oracle_names;
  if (!oracle_value.empty()) {
    oracle_names = SplitCommaList(oracle_value);
    for (const std::string& name : oracle_names) {
      if (!soft::IsKnownLogicOracle(name)) {
        std::fprintf(stderr,
                     "--oracle: unknown oracle '%s' (options: eet, diff, "
                     "norec, tlp, all)\n",
                     name.c_str());
        return 1;
      }
    }
    if (crash_mode == "real") {
      std::fprintf(stderr,
                   "--oracle needs simulated crash realization; drop "
                   "--crash-mode=real\n");
      return 1;
    }
    if (!resume_path.empty()) {
      std::fprintf(stderr, "--oracle cannot be combined with --resume\n");
      return 1;
    }
  }
  if (!resume_path.empty() && !positional.empty()) {
    std::fprintf(stderr,
                 "--resume takes dialect/budget/seed from the journal; drop the "
                 "positional arguments\n");
    return 1;
  }

  if (chaos_spec == "list") {
    return PrintFailpointInventory();
  }
  if (chaos_spec == "enumerate") {
    const std::string dialect = !positional.empty() ? positional[0] : "virtuoso";
    const int budget = positional.size() > 1 ? std::atoi(positional[1]) : 0;
    return RunChaosEnumerate(dialect, budget > 0 ? budget : 600);
  }
  if (chaos_spec == "fleet") {
    const std::string dialect = !positional.empty() ? positional[0] : "virtuoso";
    const int budget = positional.size() > 1 ? std::atoi(positional[1]) : 0;
    return RunFleetChaos(dialect, budget > 0 ? budget : 400);
  }
  if (!chaos_spec.empty()) {
    const soft::Status armed = soft::failpoint::ArmFromSpec(chaos_spec);
    if (!armed.ok()) {
      std::fprintf(stderr, "--chaos spec rejected: %s\n",
                   armed.message().c_str());
      return 1;
    }
    std::printf("chaos: armed '%s'\n", chaos_spec.c_str());
  }

  if (fleet_mode == "status") {
    const soft::Result<std::string> payload = soft::fleet::QueryFleetStatus(socket_path);
    if (!payload.ok()) {
      std::fprintf(stderr, "fleet status failed: %s\n",
                   payload.status().message().c_str());
      return 1;
    }
    std::fputs(payload->c_str(), stdout);
    return 0;
  }
  if (fleet_mode == "attach") {
    soft::fleet::FleetWorkerOptions worker;
    worker.socket_path = socket_path;
    std::printf("fleet: attaching to %s\n", socket_path.c_str());
    return soft::fleet::RunFleetWorker(worker);
  }

  soft::CampaignOptions options;
  // Logic campaigns keep running after the crash-bug corpus is exhausted:
  // the wrong-result seeds are found by oracle checks, not crash dedup, and
  // the metamorphic sweep over clean statements is the point of the run.
  options.stop_when_all_bugs_found = oracle_names.empty();
  options.logic_oracles = oracle_names;
  options.crash_realism = crash_mode == "real" ? soft::CrashRealism::kReal
                                               : soft::CrashRealism::kSimulated;
  options.statement_limits.deadline_ms = timeout_ms;
  if (checkpoint_every < 0) {
    checkpoint_every = telemetry_path.empty() ? 0 : 1000;
  }
  if (shards > 1 && checkpoint_every > 0) {
    // Shards run on concurrent threads; a shared checkpoint stream would
    // interleave. The journal still gets its header and derived tail.
    std::printf("note: checkpointing disabled for sharded runs (--resume is "
                "single-shard)\n");
    checkpoint_every = 0;
  }
  options.checkpoint_every = checkpoint_every;
  if (!trace_path.empty()) {
    options.trace_sample = trace_sample > 0 ? trace_sample : 1;
  }

  // Streaming journal: header + live checkpoints, tail after the run. An
  // interrupted process leaves header + checkpoints = a resumable journal.
  // A fleet coordinator owns its journal itself (lease stream + spool).
  std::ofstream journal;
  if (!telemetry_path.empty() && fleet_mode.empty()) {
    journal.open(telemetry_path, std::ios::trunc);
    if (!journal) {
      std::fprintf(stderr, "cannot open journal '%s'\n", telemetry_path.c_str());
      return 1;
    }
    options.checkpoint_sink = [&journal](const soft::CampaignCheckpoint& cp) {
      soft::telemetry::WriteCheckpointRecord(journal, cp);
      journal.flush();
      // False tells the campaign the journal stream is gone: it continues
      // without checkpoints and latches journal_degraded (reported below).
      // Clearing the stream's error state lets the final campaign_finish
      // record still be attempted, so a lost checkpoint degrades the journal
      // instead of poisoning every write after it.
      if (!journal.good()) {
        journal.clear();
        return false;
      }
      return true;
    };
  }

  std::string dialect;
  soft::CampaignResult result;
  uint64_t campaign_wall_ns = 0;

  if (fleet_mode == "serve") {
    // --- fleet coordinator ---------------------------------------------------
    soft::fleet::FleetOptions fopts;
    fopts.socket_path = socket_path.empty() ? "/tmp/soft_fleet.sock" : socket_path;
    fopts.workers = workers;
    fopts.units = units;
    fopts.lease_deadline_ms = lease_ms;
    fopts.journal_path = !resume_path.empty() ? resume_path : telemetry_path;
    fopts.resume = !resume_path.empty();
    if (fopts.resume) {
      const soft::Result<soft::fleet::FleetResumeSpec> spec =
          soft::fleet::LoadFleetResumeSpec(resume_path);
      if (!spec.ok()) {
        std::fprintf(stderr, "cannot resume fleet campaign: %s\n",
                     spec.status().message().c_str());
        return 1;
      }
      dialect = spec->dialect;
      options.seed = spec->seed;
      options.max_statements = spec->budget;
      fopts.units = spec->units;
      std::printf("=== SOFT fleet campaign (resuming %s) ===\n", resume_path.c_str());
      std::printf("target:  %s, budget %d, seed %llu, %zu of %d units already "
                  "journaled complete\n\n",
                  dialect.c_str(), spec->budget,
                  static_cast<unsigned long long>(spec->seed),
                  spec->completed.size(), spec->units);
    } else {
      dialect = !positional.empty() ? positional[0] : "virtuoso";
      const int budget = positional.size() > 1 ? std::atoi(positional[1]) : 150000;
      options.max_statements = budget;
      if (soft::MakeDialect(dialect) == nullptr) {
        std::fprintf(stderr, "unknown dialect '%s'; options:", dialect.c_str());
        for (const std::string& name : soft::AllDialectNames()) {
          std::fprintf(stderr, " %s", name.c_str());
        }
        std::fprintf(stderr, "\n");
        return 1;
      }
      std::printf("=== SOFT fleet campaign ===\n");
      std::printf("target:  %s, budget %d statements  [%d workers, %d units, "
                  "socket %s]\n\n",
                  dialect.c_str(), budget, fopts.workers,
                  fopts.units > 0 ? fopts.units : soft::fleet::kDefaultUnits,
                  fopts.socket_path.c_str());
    }
    const soft::telemetry::WallTimer timer;
    soft::Result<soft::fleet::FleetOutcome> outcome =
        soft::fleet::RunFleetCampaign(dialect, options, fopts);
    campaign_wall_ns = timer.ElapsedNs();
    if (!outcome.ok()) {
      std::fprintf(stderr, "fleet campaign failed: %s\n",
                   outcome.status().message().c_str());
      return 1;
    }
    const soft::fleet::FleetStats& stats = outcome->stats;
    std::printf("fleet: %d units over %d spawned workers (%d deaths), %d leases "
                "granted (%d stolen, %d reclaimed), %d heartbeats, %d units "
                "resumed, %d run locally%s\n",
                stats.units, stats.workers_spawned, stats.worker_deaths,
                stats.leases_granted, stats.leases_stolen, stats.leases_reclaimed,
                stats.heartbeats, stats.units_resumed, stats.units_run_locally,
                stats.degraded_to_local ? "  [degraded to local execution]" : "");
    if (!fopts.journal_path.empty()) {
      std::printf("fleet journal: %s  (unit spool: %s.units)\n",
                  fopts.journal_path.c_str(), fopts.journal_path.c_str());
    }
    std::printf("\n");
    result = std::move(outcome->result);
  } else if (!resume_path.empty()) {
    // --- resume path -------------------------------------------------------
    const soft::Result<soft::ResumeSpec> spec = soft::LoadResumeSpec(resume_path);
    if (!spec.ok()) {
      std::fprintf(stderr, "cannot resume: %s\n", spec.status().message().c_str());
      return 1;
    }
    dialect = spec->dialect;
    std::printf("=== SOFT bug-hunting campaign (resuming %s) ===\n",
                resume_path.c_str());
    std::printf("target:  %s, budget %d, seed %llu\n", dialect.c_str(), spec->budget,
                static_cast<unsigned long long>(spec->seed));
    if (spec->finished) {
      std::printf("note: journal already holds a finished campaign; re-running\n");
    }
    if (spec->has_checkpoint) {
      std::printf("resume anchor: checkpoint at %d cases (%d bugs found)\n",
                  spec->last_checkpoint.cases_completed, spec->last_checkpoint.unique_bugs);
    } else {
      std::printf("journal has no checkpoint yet; replaying from the start\n");
    }
    // Mirror the knobs ResumeSoftCampaign derives from the spec so the new
    // journal's header matches the interrupted run's.
    options.seed = spec->seed;
    options.max_statements = spec->budget;
    if (spec->has_checkpoint) {
      options.checkpoint_every = spec->last_checkpoint.every;
    }
    if (journal.is_open()) {
      soft::telemetry::WriteCampaignStart(journal, options, "SOFT", dialect, 1);
      if (!chaos_spec.empty()) {
        soft::telemetry::WriteChaosMarker(journal, chaos_spec);
      }
      soft::telemetry::WriteResumeMarker(
          journal, spec->has_checkpoint ? spec->last_checkpoint.cases_completed : 0);
      journal.flush();
    }
    const soft::telemetry::WallTimer timer;
    const soft::Result<soft::CampaignResult> resumed =
        soft::ResumeSoftCampaign(*spec, options);
    campaign_wall_ns = timer.ElapsedNs();
    if (!resumed.ok()) {
      std::fprintf(stderr, "resume failed: %s\n", resumed.status().message().c_str());
      return 1;
    }
    result = *resumed;
  } else {
    // --- fresh campaign ----------------------------------------------------
    dialect = !positional.empty() ? positional[0] : "virtuoso";
    const int budget = positional.size() > 1 ? std::atoi(positional[1]) : 150000;
    options.max_statements = budget;

    std::unique_ptr<soft::Database> db = soft::MakeDialect(dialect);
    if (db == nullptr) {
      std::fprintf(stderr, "unknown dialect '%s'; options:", dialect.c_str());
      for (const std::string& name : soft::AllDialectNames()) {
        std::fprintf(stderr, " %s", name.c_str());
      }
      std::fprintf(stderr, "\n");
      return 1;
    }

    std::printf("=== SOFT bug-hunting campaign ===\n");
    std::printf("target:  %s (%zu functions, strict casts: %s)\n",
                dialect.c_str(), db->registry().size(),
                db->config().cast_options.strict ? "yes" : "no");
    std::printf("budget:  %d statements", budget);
    if (shards > 1) {
      std::printf("  [%d shards]", shards);
    }
    if (options.crash_realism == soft::CrashRealism::kReal) {
      std::printf("  [real-crash workers]");
    }
    if (timeout_ms > 0) {
      std::printf("  [watchdog %d ms]", timeout_ms);
    }
    if (!oracle_names.empty()) {
      std::printf("  [oracles:");
      for (const std::string& name : oracle_names) {
        std::printf(" %s", name.c_str());
      }
      std::printf("]");
    }
    std::printf("\n\n");
    db.reset();  // the campaign builds its own instance

    if (journal.is_open()) {
      soft::telemetry::WriteCampaignStart(journal, options, "SOFT", dialect, shards);
      if (!chaos_spec.empty()) {
        soft::telemetry::WriteChaosMarker(journal, chaos_spec);
      }
      journal.flush();
    }
    const soft::telemetry::WallTimer timer;
    // The sharded runner partitions the case order, so any shard count is
    // bit-identical to the plain serial run, and it is the path that honours
    // --crash-mode=real.
    result = soft::RunShardedSoftCampaign(dialect, options, shards);
    campaign_wall_ns = timer.ElapsedNs();
  }

  std::printf("campaign finished: %d statements (%d SQL errors, %d crashes observed, "
              "%d resource-limit false positives, %d watchdog timeouts)\n\n",
              result.statements_executed, result.sql_errors, result.crashes_observed,
              result.false_positives, result.watchdog_timeouts);
  std::printf("coverage: %zu functions triggered, %zu branches covered\n\n",
              result.functions_triggered, result.branches_covered);

  std::map<std::string, int> by_pattern;
  std::map<std::string, int> by_crash;
  std::printf("--- %zu unique bugs (expected for this dialect: %d) ---\n",
              result.unique_bugs.size(), soft::ExpectedBugCount(dialect));
  for (const soft::FoundBug& bug : result.unique_bugs) {
    by_pattern[bug.found_by] += 1;
    by_crash[std::string(soft::CrashTypeName(bug.crash.crash))] += 1;
    std::printf("\nBUG-%s-%d  [%s] in %s (%s stage)\n", dialect.c_str(),
                bug.crash.bug_id, soft::CrashTypeLongName(bug.crash.crash).data(),
                bug.crash.function.c_str(), soft::StageName(bug.crash.stage).data());
    std::printf("  found by pattern %s after %d statements\n", bug.found_by.c_str(),
                bug.statements_until_found);
    std::printf("  PoC: %s\n", bug.poc_sql.c_str());
    std::printf("  %s\n", bug.crash.description.c_str());
  }

  std::printf("\n--- summary ---\nby pattern: ");
  for (const auto& [pattern, count] : by_pattern) {
    std::printf("%s:%d  ", pattern.c_str(), count);
  }
  std::printf("\nby crash type: ");
  for (const auto& [crash, count] : by_crash) {
    std::printf("%s:%d  ", crash.c_str(), count);
  }
  std::printf("\n");

  if (!oracle_names.empty()) {
    std::printf("\n--- wrong-result oracles: %zu logic bugs "
                "(expected for this dialect: %d) ---\n",
                result.logic_bugs.size(), soft::ExpectedLogicBugCount(dialect));
    std::printf("%d oracle checks, %d divergences, %d false positives\n",
                result.logic_checks, result.logic_divergences,
                result.logic_false_positives);
    for (const soft::FoundLogicBug& bug : result.logic_bugs) {
      std::printf("\nLBUG-%s-%d  [%s/%s] in %s\n", dialect.c_str(),
                  bug.info.bug_id, soft::LogicEffectName(bug.info.effect).data(),
                  soft::LogicScopeName(bug.info.scope).data(),
                  bug.info.function.c_str());
      std::printf("  flagged by the %s oracle after %d statements (case %d)\n",
                  bug.oracle.c_str(), bug.statements_until_found, bug.case_index);
      std::printf("  PoC: %s\n", bug.poc_sql.c_str());
      std::printf("  witness: %s — %s\n", bug.witness.c_str(), bug.detail.c_str());
    }
    std::printf("\n");
  }

  // Stable digest over the result's deterministic fields — CI compares this
  // line across traced/untraced and sim/real runs to prove observability
  // never perturbs outcomes.
  std::printf("outcome digest: 0x%016llx\n",
              static_cast<unsigned long long>(soft::DigestCampaignResult(result)));
  // Bug-inventory digest: invariant across serial, --shards=k, and fleet
  // forms of the same campaign — the parity line the asan-fleet lane greps.
  std::printf("bug digest: 0x%016llx\n",
              static_cast<unsigned long long>(soft::DigestBugInventory(result)));
  if (!oracle_names.empty()) {
    // Shard-invariant digest over the logic outcome alone — CI compares this
    // line between the serial and --shards=k forms of the same campaign.
    std::printf("logic digest: 0x%016llx\n",
                static_cast<unsigned long long>(soft::DigestLogicOutcome(result)));
  }

  if (!trace_path.empty()) {
    const soft::Status wrote = soft::telemetry::WriteChromeTraceFile(trace_path, result);
    if (!wrote.ok()) {
      std::fprintf(stderr, "failed to write trace '%s': %s\n", trace_path.c_str(),
                   wrote.message().c_str());
      return 1;
    }
    std::printf("wrote Chrome trace (%zu spans) to %s\n", result.trace.spans.size(),
                trace_path.c_str());
  }

  if (journal.is_open()) {
    soft::telemetry::WriteCampaignTail(journal, result, campaign_wall_ns);
    journal.flush();
    if (!journal) {
      std::fprintf(stderr, "failed to write journal '%s'\n", telemetry_path.c_str());
      return 1;
    }
    std::printf("wrote NDJSON journal to %s\n", telemetry_path.c_str());
  }
  if (result.journal_degraded) {
    std::fprintf(stderr,
                 "warning: checkpoint journal '%s' degraded mid-campaign; the "
                 "bug report above is complete but the journal is not resumable\n",
                 telemetry_path.empty() ? "(sink)" : telemetry_path.c_str());
    return 3;
  }
  return 0;
}
