// Full bug-hunting campaign over one dialect (the Section 7 workflow):
// collect expressions, generate boundary arguments with all ten patterns,
// execute, and print a bug report per finding.
//
//   $ ./examples/find_bugs [dialect] [budget]
//   $ ./examples/find_bugs virtuoso 100000
#include <cstdio>
#include <cstdlib>
#include <map>

#include "src/dialects/dialects.h"
#include "src/soft/soft_fuzzer.h"

int main(int argc, char** argv) {
  const std::string dialect = argc > 1 ? argv[1] : "virtuoso";
  const int budget = argc > 2 ? std::atoi(argv[2]) : 150000;

  std::unique_ptr<soft::Database> db = soft::MakeDialect(dialect);
  if (db == nullptr) {
    std::fprintf(stderr, "unknown dialect '%s'; options:", dialect.c_str());
    for (const std::string& name : soft::AllDialectNames()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }

  std::printf("=== SOFT bug-hunting campaign ===\n");
  std::printf("target:  %s (%zu functions, strict casts: %s)\n",
              dialect.c_str(), db->registry().size(),
              db->config().cast_options.strict ? "yes" : "no");
  std::printf("budget:  %d statements\n\n", budget);

  soft::SoftFuzzer fuzzer;
  soft::CampaignOptions options;
  options.max_statements = budget;
  options.stop_when_all_bugs_found = true;
  const soft::CampaignResult result = fuzzer.Run(*db, options);

  std::printf("campaign finished: %d statements (%d SQL errors, %d crashes observed, "
              "%d resource-limit false positives)\n\n",
              result.statements_executed, result.sql_errors, result.crashes_observed,
              result.false_positives);
  std::printf("coverage: %zu functions triggered, %zu branches covered\n\n",
              result.functions_triggered, result.branches_covered);

  std::map<std::string, int> by_pattern;
  std::map<std::string, int> by_crash;
  std::printf("--- %zu unique bugs (expected for this dialect: %d) ---\n",
              result.unique_bugs.size(), soft::ExpectedBugCount(dialect));
  for (const soft::FoundBug& bug : result.unique_bugs) {
    by_pattern[bug.found_by] += 1;
    by_crash[std::string(soft::CrashTypeName(bug.crash.crash))] += 1;
    std::printf("\nBUG-%s-%d  [%s] in %s (%s stage)\n", dialect.c_str(),
                bug.crash.bug_id, soft::CrashTypeLongName(bug.crash.crash).data(),
                bug.crash.function.c_str(), soft::StageName(bug.crash.stage).data());
    std::printf("  found by pattern %s after %d statements\n", bug.found_by.c_str(),
                bug.statements_until_found);
    std::printf("  PoC: %s\n", bug.poc_sql.c_str());
    std::printf("  %s\n", bug.crash.description.c_str());
  }

  std::printf("\n--- summary ---\nby pattern: ");
  for (const auto& [pattern, count] : by_pattern) {
    std::printf("%s:%d  ", pattern.c_str(), count);
  }
  std::printf("\nby crash type: ");
  for (const auto& [crash, count] : by_crash) {
    std::printf("%s:%d  ", crash.c_str(), count);
  }
  std::printf("\n");
  return 0;
}
