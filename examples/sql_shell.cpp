// Interactive SQL shell over any simulated dialect — a REPL for exploring
// the engine substrate and poking at the injected bugs by hand.
//
//   $ ./examples/sql_shell mariadb
//   mariadb> SELECT ST_ASTEXT(BOUNDARY(INET6_ATON('255.255.255.255')));
//   ** simulated crash: BUG-mariadb-15 [NPD] in ST_ASTEXT ...
//
// Shell commands: .help, .tables, .functions [prefix], .bugs, .quit
#include <cstdio>
#include <iostream>
#include <string>

#include "src/dialects/dialects.h"

namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  .help               this text\n"
      "  .functions [prefix] list catalog functions (optionally by prefix)\n"
      "  .bugs               list the dialect's injected bug corpus\n"
      "  .coverage           show triggered-function / branch counters\n"
      "  .quit               exit\n"
      "anything else is executed as SQL (';' optional)\n");
}

void PrintResult(const soft::StatementResult& r) {
  if (r.crashed()) {
    std::printf("** simulated crash: %s\n", r.crash->Summary().c_str());
    std::printf("   (a real DBMS would be down now; this shell survives)\n");
    return;
  }
  if (!r.ok()) {
    std::printf("error (%s stage): %s\n", soft::StageName(r.stage).data(),
                r.status.ToString().c_str());
    return;
  }
  if (!r.columns.empty()) {
    for (const std::string& col : r.columns) {
      std::printf("%s\t", col.c_str());
    }
    std::printf("\n");
  }
  for (const soft::ValueList& row : r.rows) {
    for (const soft::Value& v : row) {
      std::printf("%s\t", v.ToDisplayString().c_str());
    }
    std::printf("\n");
  }
  std::printf("(%zu row%s)\n", r.rows.size(), r.rows.size() == 1 ? "" : "s");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dialect = argc > 1 ? argv[1] : "mariadb";
  std::unique_ptr<soft::Database> db = soft::MakeDialect(dialect);
  if (db == nullptr) {
    std::fprintf(stderr, "unknown dialect '%s'\n", dialect.c_str());
    return 1;
  }
  std::printf("soft-engine shell — dialect '%s' (%zu functions, %zu injected bugs)\n",
              dialect.c_str(), db->registry().size(), db->faults().bug_count());
  std::printf("type .help for commands\n");

  std::string line;
  while (true) {
    std::printf("%s> ", dialect.c_str());
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) {
      break;
    }
    if (line.empty()) {
      continue;
    }
    if (line[0] == '.') {
      if (line == ".quit" || line == ".exit") {
        break;
      }
      if (line == ".help") {
        PrintHelp();
      } else if (line.rfind(".functions", 0) == 0) {
        const std::string prefix =
            line.size() > 11 ? line.substr(11) : std::string();
        int shown = 0;
        for (const soft::FunctionDef* def : db->registry().All()) {
          if (!prefix.empty() && def->name.rfind(prefix, 0) != 0) {
            continue;
          }
          std::printf("  %-22s %-10s %s\n", def->name.c_str(),
                      soft::FunctionTypeName(def->type).data(), def->doc.c_str());
          ++shown;
        }
        std::printf("(%d functions)\n", shown);
      } else if (line == ".bugs") {
        for (const soft::BugSpec& spec : db->faults().AllBugs()) {
          std::printf("  BUG-%s-%-3d [%s] %-18s %s — %s\n", dialect.c_str(), spec.id,
                      soft::CrashTypeName(spec.crash).data(), spec.function.c_str(),
                      spec.pattern.c_str(), spec.description.c_str());
        }
      } else if (line == ".coverage") {
        std::printf("functions triggered: %zu, branches covered: %zu\n",
                    db->coverage().TriggeredFunctionCount(),
                    db->coverage().CoveredBranchCount());
      } else {
        std::printf("unknown command; try .help\n");
      }
      continue;
    }
    PrintResult(db->Execute(line));
  }
  return 0;
}
