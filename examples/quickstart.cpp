// Quickstart: open a simulated dialect, run SQL, watch a boundary argument
// crash it, and let SOFT rediscover the bug automatically.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "src/dialects/dialects.h"
#include "src/soft/soft_fuzzer.h"

int main() {
  // 1. Open a simulated DBMS (MariaDB dialect: lenient casts, dynamic
  //    columns, spatial functions, and its 24 injected Table 4 bugs).
  std::unique_ptr<soft::Database> db = soft::MakeMariadbDialect();
  std::printf("Opened dialect '%s' with %zu built-in functions and %zu injected bugs\n\n",
              db->config().name.c_str(), db->registry().size(),
              db->faults().bug_count());

  // 2. Ordinary SQL works like any engine.
  for (const char* sql : {
           "CREATE TABLE fruit (name STRING, price DECIMAL(6,2))",
           "INSERT INTO fruit VALUES ('apple', 1.50), ('pear', 2.25)",
           "SELECT UPPER(name), price * 2 FROM fruit ORDER BY price",
           "SELECT COUNT(*), AVG(price) FROM fruit",
       }) {
    const soft::StatementResult r = db->Execute(sql);
    std::printf("sql> %s\n", sql);
    if (!r.ok()) {
      std::printf("  !! %s\n", r.status.ToString().c_str());
      continue;
    }
    for (const soft::ValueList& row : r.rows) {
      std::printf("  | ");
      for (const soft::Value& v : row) {
        std::printf("%s  ", v.ToDisplayString().c_str());
      }
      std::printf("\n");
    }
  }

  // 3. A boundary argument reaches an injected bug: the paper's Case 5
  //    (JSON_LENGTH over REPEAT('[1,', 100)) crashes this dialect.
  const soft::StatementResult crash =
      db->Execute("SELECT JSON_LENGTH(REPEAT('[1,', 100), '$[2][1]')");
  std::printf("\nsql> SELECT JSON_LENGTH(REPEAT('[1,', 100), '$[2][1]')\n");
  if (crash.crashed()) {
    std::printf("  ** simulated crash: %s\n", crash.crash->Summary().c_str());
  }

  // 4. SOFT finds that bug — and the other 23 — on its own.
  std::unique_ptr<soft::Database> fresh = soft::MakeMariadbDialect();
  soft::SoftFuzzer fuzzer;
  soft::CampaignOptions options;
  options.max_statements = 60000;
  options.stop_when_all_bugs_found = true;
  const soft::CampaignResult result = fuzzer.Run(*fresh, options);
  std::printf("\nSOFT campaign: %d statements, %zu unique bugs found, %d false positives\n",
              result.statements_executed, result.unique_bugs.size(),
              result.false_positives);
  for (size_t i = 0; i < result.unique_bugs.size() && i < 5; ++i) {
    const soft::FoundBug& bug = result.unique_bugs[i];
    std::printf("  [%s] %s\n    PoC: %s\n", bug.found_by.c_str(),
                bug.crash.Summary().c_str(), bug.poc_sql.c_str());
  }
  std::printf("  ... (%zu more)\n",
              result.unique_bugs.size() > 5 ? result.unique_bugs.size() - 5 : 0);
  return 0;
}
