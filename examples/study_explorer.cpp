// Explore the 318-bug study corpus interactively from the command line:
// filter by DBMS / stage / root cause and print the matching records plus
// aggregate statistics (the Sections 3–6 numbers).
//
//   $ ./examples/study_explorer                 # corpus overview
//   $ ./examples/study_explorer mariadb         # one DBMS
//   $ ./examples/study_explorer "" nested       # boundary-nested bugs
#include <cstdio>
#include <string>

#include "src/corpus/study.h"

namespace {

const char* CauseName(soft::StudiedBug::RootCause cause) {
  switch (cause) {
    case soft::StudiedBug::RootCause::kBoundaryLiteral:
      return "boundary-literal";
    case soft::StudiedBug::RootCause::kBoundaryCast:
      return "boundary-cast";
    case soft::StudiedBug::RootCause::kBoundaryNested:
      return "boundary-nested";
    case soft::StudiedBug::RootCause::kConfiguration:
      return "configuration";
    case soft::StudiedBug::RootCause::kTableDefinition:
      return "table-definition";
    case soft::StudiedBug::RootCause::kComplexSyntax:
      return "complex-syntax";
  }
  return "?";
}

bool CauseMatches(soft::StudiedBug::RootCause cause, const std::string& filter) {
  return filter.empty() ||
         std::string(CauseName(cause)).find(filter) != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dbms_filter = argc > 1 ? argv[1] : "";
  const std::string cause_filter = argc > 2 ? argv[2] : "";

  const soft::BugStudy& study = soft::BugStudy::Instance();

  std::printf("=== SQL function bug study corpus (%d records) ===\n\n", study.total());
  std::printf("Per DBMS (Table 1):\n");
  for (const auto& [dbms, count] : study.CountByDbms()) {
    std::printf("  %-12s %d\n", dbms.c_str(), count);
  }

  const soft::BugStudy::StageStats stages = study.CountByStage();
  std::printf("\nCrash stages (Finding 1): execute %d, optimize %d, parse %d "
              "(%d without backtrace)\n",
              stages.execute, stages.optimize, stages.parse, stages.without_backtrace);

  const soft::BugStudy::CauseStats causes = study.CountByCause();
  std::printf("Root causes (Section 5): literal %d, cast %d, nested %d "
              "=> %.1f%% boundary-value bugs\n",
              causes.boundary_literal, causes.boundary_cast, causes.boundary_nested,
              100.0 * causes.boundary_total() / study.total());

  int shown = 0;
  int matched = 0;
  std::printf("\n--- records");
  if (!dbms_filter.empty()) {
    std::printf(" [dbms=%s]", dbms_filter.c_str());
  }
  if (!cause_filter.empty()) {
    std::printf(" [cause~%s]", cause_filter.c_str());
  }
  std::printf(" ---\n");
  for (const soft::StudiedBug& bug : study.bugs()) {
    if (!dbms_filter.empty() && bug.dbms != dbms_filter) {
      continue;
    }
    if (!CauseMatches(bug.cause, cause_filter)) {
      continue;
    }
    ++matched;
    if (shown < 20) {
      ++shown;
      std::string types;
      for (const std::string& t : bug.expr_types) {
        types += t + " ";
      }
      std::printf("#%-3d %-11s cause=%-17s exprs=%d [%s] stage=%s\n", bug.id,
                  bug.dbms.c_str(), CauseName(bug.cause), bug.expression_count(),
                  types.c_str(),
                  bug.stage.has_value() ? soft::StageName(*bug.stage).data() : "unknown");
    }
  }
  std::printf("(%d records matched, %d shown)\n", matched, shown);
  return 0;
}
