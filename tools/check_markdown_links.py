#!/usr/bin/env python3
"""Docs lint: fail on dead relative links in the repo's Markdown files.

Scans every tracked *.md (skipping build trees) for inline Markdown links
and checks that relative targets exist on disk. External links (http/https/
mailto) and pure in-page anchors (#...) are skipped; a relative target's own
#anchor suffix is stripped before the existence check.

Usage: check_markdown_links.py [repo_root]
Exit code 0 when every relative link resolves, 1 otherwise (one line per
dead link: file:line: target).
"""
import os
import re
import sys

SKIP_DIRS = {".git", "build", "third_party", "node_modules", "__pycache__"}

# Inline links [text](target). Images use the same tail. Reference-style
# definitions are rare in this repo and intentionally out of scope.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames if d not in SKIP_DIRS and not d.startswith("build")
        ]
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root):
    dead = []
    with open(path, encoding="utf-8") as f:
        in_fence = False
        for line_no, line in enumerate(f, start=1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                target_path = target.split("#", 1)[0]
                if not target_path:
                    continue
                if target_path.startswith("/"):
                    resolved = os.path.join(root, target_path.lstrip("/"))
                else:
                    resolved = os.path.join(os.path.dirname(path), target_path)
                if not os.path.exists(resolved):
                    dead.append((line_no, target))
    return dead


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    failures = 0
    checked = 0
    for path in markdown_files(root):
        checked += 1
        for line_no, target in check_file(path, root):
            rel = os.path.relpath(path, root)
            print(f"{rel}:{line_no}: dead relative link: {target}")
            failures += 1
    print(f"checked {checked} markdown files, {failures} dead links")
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
