#!/usr/bin/env python3
"""Trace lint: validate a Chrome trace-event JSON file written by
soft::telemetry::WriteChromeTraceFile (the find_bugs/bench --trace flag).

Checks, in order:
  1. the file parses as JSON and has a "traceEvents" array;
  2. every event carries the required keys ("ph"/"pid"/"tid", plus
     "ts"/"dur"/"name"/"args" on X complete events) with sane types;
  3. every X event's args.span_id is present and unique across the file;
  4. every args.parent_id refers to an existing span_id (referential
     integrity of the causal tree);
  5. every child span's [ts, ts+dur] interval nests inside its parent's,
     within a small epsilon for microsecond rounding.

Usage: check_trace_json.py <trace.json> [--min-spans=N]
                           [--require-annotation=KEY[:N]]
Exit code 0 when the trace validates, 1 otherwise (one line per violation).
--min-spans additionally fails traces with fewer than N spans — CI uses it
to prove a campaign actually recorded statement spans, not just structure.
--require-annotation fails unless at least N spans (default 1) carry the
given args key — CI uses --require-annotation=oracle_verdict to prove a
logic-oracle campaign stamped its verdicts onto statement spans. Repeatable.
"""
import json
import sys

# Microsecond timestamps carry three decimals (exact nanoseconds), but a
# parent's start is formatted independently of its children's: allow one
# nanosecond of rounding slack on each edge.
EPSILON_US = 0.001

REQUIRED_ALL = ("ph", "pid", "tid")
REQUIRED_X = ("ts", "dur", "name", "cat", "args")


def fail(errors, message):
    print(f"check_trace_json: {message}")
    errors.append(message)


def validate(path, min_spans, required_annotations=()):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        fail(errors, f"cannot parse {path}: {exc}")
        return errors, 0
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(errors, '"traceEvents" missing or not an array')
        return errors, 0

    spans = {}  # span_id -> (index, ts, dur, parent_id or None)
    annotation_counts = {}  # args key -> number of X events carrying it
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(errors, f"event #{i} is not an object")
            continue
        for key in REQUIRED_ALL:
            if key not in event:
                fail(errors, f"event #{i} missing required key '{key}'")
        ph = event.get("ph")
        if ph == "M":
            continue  # process_name metadata
        if ph != "X":
            fail(errors, f"event #{i} has unexpected ph '{ph}' (want M or X)")
            continue
        for key in REQUIRED_X:
            if key not in event:
                fail(errors, f"X event #{i} missing required key '{key}'")
        ts, dur = event.get("ts"), event.get("dur")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(errors, f"X event #{i} has non-numeric or negative ts {ts!r}")
            continue
        if not isinstance(dur, (int, float)) or dur < 0:
            fail(errors, f"X event #{i} has non-numeric or negative dur {dur!r}")
            continue
        args = event.get("args")
        if not isinstance(args, dict) or "span_id" not in args:
            fail(errors, f"X event #{i} has no args.span_id")
            continue
        span_id = args["span_id"]
        if span_id in spans:
            fail(errors, f"X event #{i} reuses span_id {span_id} "
                         f"(first seen at event #{spans[span_id][0]})")
            continue
        spans[span_id] = (i, float(ts), float(dur), args.get("parent_id"))
        for key in args:
            annotation_counts[key] = annotation_counts.get(key, 0) + 1

    for span_id, (i, ts, dur, parent_id) in spans.items():
        if parent_id is None:
            continue
        if parent_id not in spans:
            fail(errors, f"X event #{i} parent_id {parent_id} matches no span")
            continue
        _, pts, pdur, _ = spans[parent_id]
        if ts < pts - EPSILON_US or ts + dur > pts + pdur + EPSILON_US:
            fail(errors,
                 f"X event #{i} span {span_id} [{ts:.3f}, {ts + dur:.3f}] "
                 f"escapes parent {parent_id} [{pts:.3f}, {pts + pdur:.3f}]")

    if len(spans) < min_spans:
        fail(errors, f"trace has {len(spans)} spans, need >= {min_spans}")
    for key, needed in required_annotations:
        have = annotation_counts.get(key, 0)
        if have < needed:
            fail(errors, f"annotation '{key}' on {have} spans, need >= {needed}")
    return errors, len(spans)


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    min_spans = 0
    required_annotations = []
    for a in sys.argv[1:]:
        if a.startswith("--min-spans="):
            min_spans = int(a.split("=", 1)[1])
        elif a.startswith("--require-annotation="):
            spec = a.split("=", 1)[1]
            key, _, count = spec.partition(":")
            if not key:
                print(f"bad annotation spec {a!r} (want KEY or KEY:N)")
                return 1
            required_annotations.append((key, int(count) if count else 1))
        elif a.startswith("--"):
            print(f"unknown flag {a}")
            return 1
    if len(args) != 1:
        print(__doc__)
        return 1
    errors, span_count = validate(args[0], min_spans, required_annotations)
    print(f"checked {args[0]}: {span_count} spans, {len(errors)} violations")
    return 0 if not errors else 1


if __name__ == "__main__":
    sys.exit(main())
