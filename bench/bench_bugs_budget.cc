// Regenerates the Section 7.5 bug-count comparison (SOFT: 22 unique bugs in
// 24 hours on the five commonly-measured DBMSs; baselines: 0) and the two
// design ablations called out in DESIGN.md:
//   (a) the Finding-3 nesting cutoff (max seed functions 1/2/4), and
//   (b) the digit-sweep literal pool vs a single-extreme-values pool.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/baselines/comparison.h"
#include "src/dialects/dialects.h"

namespace soft {
namespace {

constexpr int kBudget = 20000;

void PrintBugComparison() {
  PrintHeader(
      "Section 7.5: unique SQL function bugs per tool under one budget\n"
      "(paper, 24h: SOFT 22 on PostgreSQL/MySQL/MariaDB/ClickHouse/MonetDB,\n"
      "baselines 0)");
  PrintRow({"DBMS", "SQUIRREL*", "SQLancer*", "SQLsmith*", "SOFT"}, {12, 12, 12, 12, 8});
  std::map<std::string, size_t> totals;
  for (const std::string& dialect : AllDialectNames()) {
    const std::vector<ToolRun> runs = RunAllTools(dialect, kBudget);
    std::vector<std::string> cells = {dialect};
    for (const char* tool : {"SQUIRREL*", "SQLancer*", "SQLsmith*", "SOFT"}) {
      const ToolRun* run = nullptr;
      for (const ToolRun& r : runs) {
        if (r.tool == tool) {
          run = &r;
        }
      }
      if (!ToolSupportsDialect(tool, dialect) || run == nullptr) {
        cells.push_back("-");
        continue;
      }
      totals[tool] += run->result.unique_bugs.size();
      cells.push_back(std::to_string(run->result.unique_bugs.size()));
    }
    PrintRow(cells, {12, 12, 12, 12, 8});
  }
  PrintRow({"Total", std::to_string(totals["SQUIRREL*"]),
            std::to_string(totals["SQLancer*"]), std::to_string(totals["SQLsmith*"]),
            std::to_string(totals["SOFT"])},
           {12, 12, 12, 12, 8});
}

size_t RunSoftVariant(const std::string& dialect, const SoftOptions& soft_options,
                      int budget = kBudget) {
  auto db = MakeDialect(dialect);
  SoftFuzzer fuzzer(soft_options);
  CampaignOptions options;
  options.seed = 1;
  options.max_statements = budget;
  return fuzzer.Run(*db, options).unique_bugs.size();
}

void PrintNestingAblation() {
  PrintHeader(
      "Ablation (Finding 3 cutoff): bugs found on mariadb + virtuoso when\n"
      "seeds with more than N function calls are expanded");
  for (int max_funcs : {1, 2, 4}) {
    SoftOptions opt;
    opt.patterns.max_seed_functions = max_funcs;
    const size_t mariadb = RunSoftVariant("mariadb", opt);
    const size_t virtuoso = RunSoftVariant("virtuoso", opt);
    std::printf("max seed functions = %d: mariadb %zu/24, virtuoso %zu/45%s\n",
                max_funcs, mariadb, virtuoso,
                max_funcs == 2 ? "  <- paper's cutoff" : "");
  }
}

void PrintPoolAblation() {
  PrintHeader(
      "Ablation (Pattern 1.1): digit-sweep pool vs extremes-only pool\n"
      "(Section 6: 'merely attempting extremely large values is insufficient')");
  for (const bool extremes_only : {false, true}) {
    SoftOptions opt;
    opt.extremes_only_pool = extremes_only;
    opt.only_patterns = {"P1.2", "P1.3"};  // the literal-value patterns
    const size_t mariadb = RunSoftVariant("mariadb", opt);
    const size_t duckdb = RunSoftVariant("duckdb", opt);
    std::printf("%-18s mariadb %zu, duckdb %zu\n",
                extremes_only ? "extremes-only:" : "digit-sweep:", mariadb, duckdb);
  }
}

void PrintPerPatternContribution() {
  PrintHeader("Per-pattern contribution: bugs found with each pattern alone (mariadb)");
  for (const char* pattern :
       {"P1.2", "P1.3", "P1.4", "P2.1", "P2.2", "P2.3", "P3.1", "P3.2", "P3.3"}) {
    SoftOptions opt;
    opt.only_patterns = {pattern};
    std::printf("  %s alone: %zu bugs\n", pattern, RunSoftVariant("mariadb", opt));
  }
}

void BM_SoftBudget2k(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunSoftVariant("mariadb", SoftOptions(), 2000));
  }
}
BENCHMARK(BM_SoftBudget2k)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
}  // namespace soft

int main(int argc, char** argv) {
  soft::PrintBugComparison();
  soft::PrintNestingAblation();
  soft::PrintPoolAblation();
  soft::PrintPerPatternContribution();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
