// Supporting performance benches: parse / evaluate / generate throughput of
// the harness machinery (no paper counterpart; documents that the simulated
// substrate is fast enough for the statement budgets used elsewhere).
//
// The sharded-campaign bench honours --threads=N (or SOFT_BENCH_THREADS) for
// the shard count; the full scaling curve lives in bench_parallel_scaling.
// --telemetry=<path> writes the sharded campaign's NDJSON event journal
// (docs/OBSERVABILITY.md) after its final iteration. --timeout-ms=<n> and
// --crash-mode=sim|real apply the statement watchdog / real-crash worker
// harness (docs/ROBUSTNESS.md) to the sharded campaign, so their overhead is
// measurable; --resume=<journal> benchmarks a checkpoint-verified resume of
// that journal instead of a fresh campaign. --trace=<path> enables span
// tracing during the sharded campaign (so its overhead is measurable) and
// exports the final iteration's Chrome trace-event JSON.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "src/dialects/dialects.h"
#include "src/soft/expr_collection.h"
#include "src/soft/resume.h"
#include "src/soft/patterns.h"
#include "src/soft/seeds.h"
#include "src/soft/soft_fuzzer.h"
#include "src/sqlparser/parser.h"
#include "src/telemetry/journal.h"
#include "src/telemetry/telemetry.h"

namespace soft {

int g_bench_threads = 0;           // 0 = unset; resolved by BenchThreads()
std::string g_telemetry_path;      // set by --telemetry=<path>
std::string g_resume_path;         // set by --resume=<journal>
std::string g_trace_path;          // set by --trace=<path>
int g_timeout_ms = 0;              // set by --timeout-ms=<n>
bool g_crash_real = false;         // set by --crash-mode=real

namespace {

int BenchThreads() {
  if (g_bench_threads > 0) {
    return g_bench_threads;
  }
  if (const char* env = std::getenv("SOFT_BENCH_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) {
      return n;
    }
  }
  return 1;
}

void BM_ParseSimpleSelect(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseStatement("SELECT UPPER('abc'), 1 + 2 * 3"));
  }
}
BENCHMARK(BM_ParseSimpleSelect);

void BM_ParseClauseHeavySelect(benchmark::State& state) {
  const std::string sql =
      "SELECT a, SUM(b) AS s FROM t WHERE a > 1 AND b IS NOT NULL GROUP BY a "
      "HAVING SUM(b) > 2 ORDER BY s DESC LIMIT 10";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseStatement(sql));
  }
}
BENCHMARK(BM_ParseClauseHeavySelect);

void BM_ExecuteScalarFunction(benchmark::State& state) {
  auto db = MakeMariadbDialect();
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Execute("SELECT REPLACE('banana', 'a', 'o')"));
  }
}
BENCHMARK(BM_ExecuteScalarFunction);

void BM_ExecuteDecimalArithmetic(benchmark::State& state) {
  auto db = MakeMariadbDialect();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db->Execute("SELECT 123456789012345678901234567890.5 * 987654321.25"));
  }
}
BENCHMARK(BM_ExecuteDecimalArithmetic);

void BM_ExecuteAggregateQuery(benchmark::State& state) {
  auto db = MakeMariadbDialect();
  db->Execute("CREATE TABLE bench_t (a INT, b STRING)");
  for (int i = 0; i < 100; ++i) {
    db->Execute("INSERT INTO bench_t VALUES (" + std::to_string(i) + ", 'row')");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db->Execute("SELECT b, SUM(a), AVG(a) FROM bench_t GROUP BY b"));
  }
}
BENCHMARK(BM_ExecuteAggregateQuery);

void BM_PatternGenerationPerSeed(benchmark::State& state) {
  auto db = MakeMariadbDialect();
  PatternEngine engine(*db, 1);
  const std::vector<std::string> corpus = {"INSTR('banana', 'na')",
                                           "JSON_LENGTH('[1]', '$')"};
  for (auto _ : state) {
    std::vector<GeneratedCase> out;
    engine.GenerateAll("SUBSTR('abcdef', 2, 3)", corpus, out);
    benchmark::DoNotOptimize(out.size());
    state.counters["cases_per_seed"] = static_cast<double>(out.size());
  }
}
BENCHMARK(BM_PatternGenerationPerSeed);

void BM_CorpusCollection(benchmark::State& state) {
  auto db = MakeMariadbDialect();
  const std::vector<std::string> suite = SeedSuiteFor("mariadb");
  for (auto _ : state) {
    benchmark::DoNotOptimize(CollectCorpus(*db, suite));
  }
}
BENCHMARK(BM_CorpusCollection);

void BM_DialectConstruction(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeVirtuosoDialect());
  }
}
BENCHMARK(BM_DialectConstruction);

void BM_FaultCheckMiss(benchmark::State& state) {
  auto db = MakeVirtuosoDialect();
  const ValueList args = {Value::Str("plain")};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db->faults().CheckFunction("UPPER", args, 1, false, Stage::kExecute));
  }
}
BENCHMARK(BM_FaultCheckMiss);

void BM_ShardedSoftCampaign(benchmark::State& state) {
  const int shards = BenchThreads();
  CampaignOptions options;
  options.seed = 1;
  options.max_statements = 8000;
  options.statement_limits.deadline_ms = g_timeout_ms;
  options.crash_realism =
      g_crash_real ? CrashRealism::kReal : CrashRealism::kSimulated;
  options.trace_sample = g_trace_path.empty() ? 0 : 1;
  CampaignResult last;
  uint64_t last_wall_ns = 0;
  for (auto _ : state) {
    const telemetry::WallTimer timer;
    CampaignResult result =
        g_resume_path.empty()
            ? RunShardedSoftCampaign("mariadb", options, shards)
            : [&] {
                const Result<ResumeSpec> spec = LoadResumeSpec(g_resume_path);
                if (!spec.ok()) {
                  state.SkipWithError(spec.status().message().c_str());
                  return CampaignResult{};
                }
                const Result<CampaignResult> resumed =
                    ResumeSoftCampaign(*spec, options);
                if (!resumed.ok()) {
                  state.SkipWithError(resumed.status().message().c_str());
                  return CampaignResult{};
                }
                return *resumed;
              }();
    last_wall_ns = timer.ElapsedNs();
    benchmark::DoNotOptimize(result.statements_executed);
    state.counters["bugs"] = static_cast<double>(result.unique_bugs.size());
    last = std::move(result);
  }
  state.counters["shards"] = shards;
  if (!g_trace_path.empty()) {
    const Status status = telemetry::WriteChromeTraceFile(g_trace_path, last);
    if (status.ok()) {
      std::printf("wrote Chrome trace (%zu spans) to %s\n", last.trace.spans.size(),
                  g_trace_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write trace: %s\n", status.message().c_str());
    }
  }
  if (!g_telemetry_path.empty()) {
    const Status status =
        telemetry::WriteCampaignJournalFile(g_telemetry_path, options, last,
                                            last_wall_ns);
    if (status.ok()) {
      std::printf("wrote NDJSON journal to %s\n", g_telemetry_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write journal: %s\n",
                   status.message().c_str());
    }
  }
}
BENCHMARK(BM_ShardedSoftCampaign)->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace
}  // namespace soft

int main(int argc, char** argv) {
  // Strip our own flags before google-benchmark sees the args.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      soft::g_bench_threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--telemetry=", 12) == 0) {
      soft::g_telemetry_path = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--resume=", 9) == 0) {
      soft::g_resume_path = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      soft::g_trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--timeout-ms=", 13) == 0) {
      soft::g_timeout_ms = std::atoi(argv[i] + 13);
      if (soft::g_timeout_ms < 0) {
        std::fprintf(stderr, "--timeout-ms must be >= 0\n");
        return 1;
      }
    } else if (std::strncmp(argv[i], "--crash-mode=", 13) == 0) {
      const char* mode = argv[i] + 13;
      if (std::strcmp(mode, "real") == 0) {
        soft::g_crash_real = true;
      } else if (std::strcmp(mode, "sim") != 0) {
        std::fprintf(stderr, "--crash-mode must be 'sim' or 'real' (got '%s')\n",
                     mode);
        return 1;
      }
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
