// Regenerates the bug-study artifacts: Table 1 (bugs per DBMS), Figure 1
// (function-type occurrence histogram), and Table 2 (function-expression
// counts per bug-inducing statement) — all computed from the 318-record
// study corpus. Then times corpus construction and analysis.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/bench_util.h"
#include "src/corpus/study.h"

namespace soft {
namespace {

void PrintTable1() {
  PrintHeader("Table 1: collected built-in SQL function bugs per DBMS");
  const auto by_dbms = BugStudy::Instance().CountByDbms();
  PrintRow({"DBMS", "PostgreSQL", "MySQL", "MariaDB", "Total"}, {14, 12, 8, 9, 7});
  PrintRow({"Studied Bugs", std::to_string(by_dbms.at("postgresql")),
            std::to_string(by_dbms.at("mysql")), std::to_string(by_dbms.at("mariadb")),
            std::to_string(BugStudy::Instance().total())},
           {14, 12, 8, 9, 7});
  PrintRow({"Paper", "39", "10", "269", "318"}, {14, 12, 8, 9, 7});
}

void PrintFigure1() {
  PrintHeader(
      "Figure 1: occurrences and unique SQL functions per function type\n"
      "(string 117/57 and aggregate 91 stated in the paper; other bars\n"
      "reconstructed to the stated 508-occurrence total)");
  const auto stats = BugStudy::Instance().FunctionTypeStats();
  std::vector<std::pair<std::string, BugStudy::TypeStats>> sorted(stats.begin(),
                                                                  stats.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second.occurrences > b.second.occurrences;
  });
  PrintRow({"Function type", "# occurrences", "# unique functions", "share"},
           {16, 16, 20, 8});
  for (const auto& [type, s] : sorted) {
    PrintRow({type, std::to_string(s.occurrences), std::to_string(s.unique_functions),
              Pct(s.occurrences, 508)},
             {16, 16, 20, 8});
  }
  std::printf("Total occurrences: %d (paper: 508)\n",
              BugStudy::Instance().TotalOccurrences());
}

void PrintTable2() {
  PrintHeader("Table 2: function expressions per bug-inducing statement");
  const auto by_count = BugStudy::Instance().CountByExpressionCount();
  PrintRow({"Occurrences of Function Expressions", "1", "2", "3", "4", ">=5"},
           {38, 6, 6, 6, 6, 6});
  PrintRow({"Number of Bug-inducing Statements", std::to_string(by_count.at(1)),
            std::to_string(by_count.at(2)), std::to_string(by_count.at(3)),
            std::to_string(by_count.at(4)), std::to_string(by_count.at(5))},
           {38, 6, 6, 6, 6, 6});
  PrintRow({"Paper", "191", "87", "23", "11", "6"}, {38, 6, 6, 6, 6, 6});
  const int at_most_two = by_count.at(1) + by_count.at(2);
  std::printf("Finding 3: %s of statements contain <= 2 expressions (paper: 87.5%%)\n",
              Pct(at_most_two, 318).c_str());
}

void BM_StudyAnalysis(benchmark::State& state) {
  for (auto _ : state) {
    const auto stats = BugStudy::Instance().FunctionTypeStats();
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_StudyAnalysis);

void BM_StudyFullScan(benchmark::State& state) {
  for (auto _ : state) {
    int total = 0;
    for (const StudiedBug& bug : BugStudy::Instance().bugs()) {
      total += bug.expression_count();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_StudyFullScan);

}  // namespace
}  // namespace soft

int main(int argc, char** argv) {
  soft::PrintTable1();
  soft::PrintFigure1();
  soft::PrintTable2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
