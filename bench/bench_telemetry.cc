// Telemetry export bench: runs a fixed-budget SOFT campaign on every
// dialect, prints the recorded stage latencies and per-pattern counters, and
// writes BENCH_telemetry.json (per-stage histograms + per-pattern counters
// for all seven dialects) for docs/OBSERVABILITY.md.
//
// Also checks the observability contract: re-running one campaign with the
// runtime kill switch off must leave every campaign outcome (statements,
// bug set, coverage) bit-identical — recording is observational only. The
// bench exits non-zero if that check fails.
//
// Knobs: --budget=N / SOFT_BENCH_BUDGET (default 20000), --seed=N.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/dialects/dialects.h"
#include "src/soft/soft_fuzzer.h"
#include "src/telemetry/telemetry.h"

namespace soft {
namespace {

std::set<int> BugIds(const CampaignResult& result) {
  std::set<int> ids;
  for (const FoundBug& bug : result.unique_bugs) {
    ids.insert(bug.crash.bug_id);
  }
  return ids;
}

CampaignResult RunOne(const std::string& dialect, const CampaignOptions& options) {
  std::unique_ptr<Database> db = MakeDialect(dialect);
  SoftFuzzer fuzzer;
  return fuzzer.Run(*db, options);
}

int RunBench(int budget, uint64_t seed) {
  CampaignOptions options;
  options.seed = seed;
  options.max_statements = budget;

  PrintHeader("Campaign telemetry: SOFT on every dialect, budget " +
              std::to_string(budget) + ", seed " + std::to_string(seed));
  PrintRow({"dialect", "stmts", "bugs", "parse µs", "optimize µs", "execute µs"},
           {12, 10, 8, 12, 13, 12});

  const std::vector<std::string> dialects = AllDialectNames();
  std::vector<CampaignResult> results;
  results.reserve(dialects.size());
  for (const std::string& dialect : dialects) {
    CampaignResult result = RunOne(dialect, options);
    char parse_buf[32], optimize_buf[32], execute_buf[32];
    std::snprintf(parse_buf, sizeof(parse_buf), "%.1f",
                  result.telemetry.ForStage(Stage::kParse).MeanUs());
    std::snprintf(optimize_buf, sizeof(optimize_buf), "%.1f",
                  result.telemetry.ForStage(Stage::kOptimize).MeanUs());
    std::snprintf(execute_buf, sizeof(execute_buf), "%.1f",
                  result.telemetry.ForStage(Stage::kExecute).MeanUs());
    PrintRow({dialect, std::to_string(result.statements_executed),
              std::to_string(result.unique_bugs.size()), parse_buf, optimize_buf,
              execute_buf},
             {12, 10, 8, 12, 13, 12});
    results.push_back(std::move(result));
  }

  // Observational-only check: the kill switch must not change any outcome.
  const std::string& probe = dialects.front();
  telemetry::SetRuntimeEnabled(false);
  const CampaignResult dark = RunOne(probe, options);
  telemetry::SetRuntimeEnabled(true);
  const CampaignResult& lit = results.front();
  const bool identical = dark.statements_executed == lit.statements_executed &&
                         dark.sql_errors == lit.sql_errors &&
                         dark.crashes_observed == lit.crashes_observed &&
                         dark.false_positives == lit.false_positives &&
                         dark.functions_triggered == lit.functions_triggered &&
                         dark.branches_covered == lit.branches_covered &&
                         BugIds(dark) == BugIds(lit);
  std::printf("\nrecording off vs on (%s): campaign outcomes %s\n", probe.c_str(),
              identical ? "identical" : "DIVERGED");
#ifdef SOFT_TELEMETRY_ENABLED
  std::printf("telemetry hooks: compiled in (SOFT_TELEMETRY=ON)\n");
#else
  std::printf("telemetry hooks: compiled out (SOFT_TELEMETRY=OFF)\n");
#endif

  std::ostringstream json;
  json << "{\n  \"bench\": \"telemetry\",\n  \"budget\": " << budget
       << ",\n  \"seed\": " << seed << ",\n  \"dialects\": {\n";
  for (size_t i = 0; i < results.size(); ++i) {
    json << "    \"" << dialects[i] << "\": " << results[i].telemetry.ToJson()
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  }\n}\n";
  if (!WriteBenchJson("BENCH_telemetry.json", json.str())) {
    return 1;
  }

  if (!identical) {
    std::fprintf(stderr, "FAIL: disabling telemetry changed a campaign result\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace soft

int main(int argc, char** argv) {
  int budget = 20000;
  uint64_t seed = 1;
  if (const char* env = std::getenv("SOFT_BENCH_BUDGET")) {
    budget = std::atoi(env);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--budget=", 9) == 0) {
      budget = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = static_cast<uint64_t>(std::strtoull(argv[i] + 7, nullptr, 10));
    }
  }
  return soft::RunBench(budget, seed);
}
