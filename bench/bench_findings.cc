// Regenerates Findings 1–4 and the Section 5/6 root-cause statistics from
// the study corpus, printing paper-vs-measured for every percentage.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/corpus/study.h"

namespace soft {
namespace {

void PrintFinding1() {
  PrintHeader("Finding 1: crash stages (of 230 bugs with backtraces)");
  const BugStudy::StageStats s = BugStudy::Instance().CountByStage();
  PrintRow({"Stage", "Count", "Measured", "Paper"}, {14, 8, 10, 10});
  PrintRow({"execution", std::to_string(s.execute), Pct(s.execute, s.with_backtrace),
            "70.0%"},
           {14, 8, 10, 10});
  PrintRow({"optimization", std::to_string(s.optimize),
            Pct(s.optimize, s.with_backtrace), "19.6%"},
           {14, 8, 10, 10});
  PrintRow({"parsing", std::to_string(s.parse), Pct(s.parse, s.with_backtrace), "10.4%"},
           {14, 8, 10, 10});
  std::printf("(%d reports without identifiable backtraces)\n", s.without_backtrace);
}

void PrintFinding2() {
  PrintHeader("Finding 2: dominant function types");
  const auto stats = BugStudy::Instance().FunctionTypeStats();
  const int total = BugStudy::Instance().TotalOccurrences();
  std::printf("string:    %d/%d = %s (paper: 117/508 = 23.0%%)\n",
              stats.at("string").occurrences, total,
              Pct(stats.at("string").occurrences, total).c_str());
  std::printf("aggregate: %d/%d = %s (paper: 91/508 = 17.9%%)\n",
              stats.at("aggregate").occurrences, total,
              Pct(stats.at("aggregate").occurrences, total).c_str());
}

void PrintFinding3() {
  PrintHeader("Finding 3: statements with at most two function expressions");
  const auto by_count = BugStudy::Instance().CountByExpressionCount();
  const int at_most_two = by_count.at(1) + by_count.at(2);
  std::printf("%d/318 = %s (paper: 278/318 = 87.5%%)\n", at_most_two,
              Pct(at_most_two, 318).c_str());
}

void PrintFinding4() {
  PrintHeader("Finding 4: prerequisite statements of the PoCs");
  const BugStudy::PrereqStats s = BugStudy::Instance().CountByPrereq();
  PrintRow({"Prerequisite", "Count", "Measured", "Paper"}, {28, 8, 10, 10});
  PrintRow({"table creation + insertion", std::to_string(s.table_and_data),
            Pct(s.table_and_data, 318), "47.5%"},
           {28, 8, 10, 10});
  PrintRow({"no table needed", std::to_string(s.none), Pct(s.none, 318), "41.5%"},
           {28, 8, 10, 10});
  PrintRow({"empty table only", std::to_string(s.empty_table), Pct(s.empty_table, 318),
            "11.0%"},
           {28, 8, 10, 10});
}

void PrintSection5() {
  PrintHeader("Section 5: root causes of the 318 studied bugs");
  const BugStudy::CauseStats s = BugStudy::Instance().CountByCause();
  PrintRow({"Root cause", "Count", "Measured", "Paper"}, {30, 8, 10, 10});
  PrintRow({"boundary literal values", std::to_string(s.boundary_literal),
            Pct(s.boundary_literal, 318), "29.5%"},
           {30, 8, 10, 10});
  PrintRow({"boundary type castings", std::to_string(s.boundary_cast),
            Pct(s.boundary_cast, 318), "23.3%"},
           {30, 8, 10, 10});
  PrintRow({"boundary nested functions", std::to_string(s.boundary_nested),
            Pct(s.boundary_nested, 318), "34.6%"},
           {30, 8, 10, 10});
  PrintRow({"ALL boundary values", std::to_string(s.boundary_total()),
            Pct(s.boundary_total(), 318), "87.4%"},
           {30, 8, 10, 10});
  PrintRow({"configurations", std::to_string(s.configuration), "-", "8 bugs"},
           {30, 8, 10, 10});
  PrintRow({"table definitions", std::to_string(s.table_definition), "-", "24 bugs"},
           {30, 8, 10, 10});
  PrintRow({"complex syntax", std::to_string(s.complex_syntax), "-", "8 bugs"},
           {30, 8, 10, 10});
}

void PrintSection6() {
  PrintHeader("Section 6: boundary-literal sub-classes");
  const BugStudy::LiteralClassStats s = BugStudy::Instance().CountByLiteralClass();
  std::printf("extreme integers/decimals: %d (%s; paper 10.0%%)\n", s.extreme_numeric,
              Pct(s.extreme_numeric, 318).c_str());
  std::printf("empty strings / NULL:      %d (%s; paper 6.6%%)\n", s.empty_or_null,
              Pct(s.empty_or_null, 318).c_str());
  std::printf("crafted format strings:    %d (%s; paper 12.9%%)\n", s.crafted_format,
              Pct(s.crafted_format, 318).c_str());
}

void BM_AllFindings(benchmark::State& state) {
  for (auto _ : state) {
    const auto s1 = BugStudy::Instance().CountByStage();
    const auto s4 = BugStudy::Instance().CountByPrereq();
    const auto s5 = BugStudy::Instance().CountByCause();
    benchmark::DoNotOptimize(s1);
    benchmark::DoNotOptimize(s4);
    benchmark::DoNotOptimize(s5);
  }
}
BENCHMARK(BM_AllFindings);

}  // namespace
}  // namespace soft

int main(int argc, char** argv) {
  soft::PrintFinding1();
  soft::PrintFinding2();
  soft::PrintFinding3();
  soft::PrintFinding4();
  soft::PrintSection5();
  soft::PrintSection6();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
