// Shared formatting helpers for the reproduction benches. Each bench binary
// prints the paper table/figure it regenerates (paper value vs measured
// value where applicable) and then runs google-benchmark timings for the
// machinery involved.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/util/io.h"
#include "src/util/status.h"

namespace soft {

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void PrintRow(const std::vector<std::string>& cells,
                     const std::vector<int>& widths) {
  for (size_t i = 0; i < cells.size(); ++i) {
    const int width = i < widths.size() ? widths[i] : 16;
    std::printf("%-*s", width, cells[i].c_str());
  }
  std::printf("\n");
}

inline std::string Pct(double part, double whole) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", whole == 0 ? 0.0 : 100.0 * part / whole);
  return buf;
}

// Publishes a bench's BENCH_*.json artifact atomically (tmp+fsync+rename) and
// loudly: EXPERIMENTS.md plots are regenerated from these files, so a silent
// ENOSPC/EPERM truncation must fail the bench run, not poison the plots.
// Returns false (after printing to stderr) on failure.
inline bool WriteBenchJson(const std::string& path, const std::string& contents) {
  if (const Status written = io::WriteFileAtomic(path, contents); !written.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 written.message().c_str());
    return false;
  }
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace soft

#endif  // BENCH_BENCH_UTIL_H_
