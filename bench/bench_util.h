// Shared formatting helpers for the reproduction benches. Each bench binary
// prints the paper table/figure it regenerates (paper value vs measured
// value where applicable) and then runs google-benchmark timings for the
// machinery involved.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

namespace soft {

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void PrintRow(const std::vector<std::string>& cells,
                     const std::vector<int>& widths) {
  for (size_t i = 0; i < cells.size(); ++i) {
    const int width = i < widths.size() ? widths[i] : 16;
    std::printf("%-*s", width, cells[i].c_str());
  }
  std::printf("\n");
}

inline std::string Pct(double part, double whole) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", whole == 0 ? 0.0 : 100.0 * part / whole);
  return buf;
}

}  // namespace soft

#endif  // BENCH_BENCH_UTIL_H_
