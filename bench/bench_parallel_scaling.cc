// Scaling curve of the sharded campaign runner (supporting bench; the
// paper's campaigns are 24-hour wall-clock runs against seven DBMSs in
// parallel, ours replays them as sharded statement budgets).
//
// Runs a fixed-budget SOFT campaign on the Virtuoso dialect (the largest
// injected corpus: 45 bugs) at 1/2/4/8 shards, checks every shard count
// finds the identical bug set as the 1-shard serial reference, prints the
// curve, and writes BENCH_parallel.json into the working directory for
// EXPERIMENTS.md.
//
// Knobs: --budget=N / SOFT_BENCH_BUDGET (default 250000, the Table 4
// reference budget), --dialect=NAME / SOFT_BENCH_DIALECT,
// --mode=partition|split / SOFT_BENCH_SHARD_MODE (default partition: shards
// divide the serial case order, so the bug set is identical by construction
// and the statement totals match the serial run; split resamples with
// per-shard seeds and needs the full reference budget for set identity).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/dialects/dialects.h"
#include "src/soft/soft_fuzzer.h"
#include "src/telemetry/telemetry.h"

namespace soft {
namespace {

struct ScalingPoint {
  int shards = 0;
  double millis = 0;
  double speedup = 1.0;
  size_t bugs = 0;
  int statements = 0;
  bool identical_bug_set = false;
};

std::set<int> BugIds(const CampaignResult& result) {
  std::set<int> ids;
  for (const FoundBug& bug : result.unique_bugs) {
    ids.insert(bug.crash.bug_id);
  }
  return ids;
}

int RunScaling(const std::string& dialect, int budget, ShardMode mode) {
  CampaignOptions options;
  options.seed = 1;
  options.max_statements = budget;
  const char* mode_name = mode == ShardMode::kPartitionCases ? "partition" : "split";

  PrintHeader("Parallel sharded campaigns: SOFT on " + dialect + ", budget " +
              std::to_string(budget) + ", mode " + mode_name + ", K shards");
  PrintRow({"shards", "wall ms", "speedup", "stmts", "bugs", "identical set"},
           {8, 12, 10, 10, 8, 14});

  std::vector<ScalingPoint> points;
  std::set<int> reference_ids;
  double serial_millis = 0;
  bool all_identical = true;
  for (const int shards : {1, 2, 4, 8}) {
    const telemetry::WallTimer timer;
    const CampaignResult result =
        RunShardedSoftCampaign(dialect, options, shards, SoftOptions(), mode);

    ScalingPoint point;
    point.shards = shards;
    point.millis = timer.ElapsedMs();
    point.bugs = result.unique_bugs.size();
    point.statements = result.statements_executed;
    if (shards == 1) {
      reference_ids = BugIds(result);
      serial_millis = point.millis;
    }
    point.identical_bug_set = BugIds(result) == reference_ids;
    point.speedup = point.millis > 0 ? serial_millis / point.millis : 0;
    all_identical = all_identical && point.identical_bug_set;

    char millis_buf[32], speedup_buf[32];
    std::snprintf(millis_buf, sizeof(millis_buf), "%.0f", point.millis);
    std::snprintf(speedup_buf, sizeof(speedup_buf), "%.2fx", point.speedup);
    PrintRow({std::to_string(shards), millis_buf, speedup_buf,
              std::to_string(point.statements), std::to_string(point.bugs),
              point.identical_bug_set ? "yes" : "NO"},
             {8, 12, 10, 10, 8, 14});
    points.push_back(point);
  }
  std::printf(
      "(speedup tracks available cores; per-shard corpus collection and\n"
      " pattern generation are the fixed serial cost, see EXPERIMENTS.md)\n");

  std::ostringstream json;
  json << "{\n  \"bench\": \"parallel_scaling\",\n  \"dialect\": \"" << dialect
       << "\",\n  \"budget\": " << budget << ",\n  \"mode\": \"" << mode_name
       << "\",\n  \"seed\": 1,\n  \"reference_bugs\": " << reference_ids.size()
       << ",\n  \"points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const ScalingPoint& p = points[i];
    json << "    {\"shards\": " << p.shards << ", \"millis\": " << p.millis
         << ", \"speedup\": " << p.speedup << ", \"statements\": " << p.statements
         << ", \"bugs\": " << p.bugs
         << ", \"identical_bug_set\": " << (p.identical_bug_set ? "true" : "false")
         << "}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  if (!WriteBenchJson("BENCH_parallel.json", json.str())) {
    return 1;
  }

  if (!all_identical) {
    std::fprintf(stderr, "FAIL: a sharded run diverged from the serial bug set\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace soft

int main(int argc, char** argv) {
  std::string dialect = "virtuoso";
  std::string mode_name = "partition";
  int budget = 250000;
  if (const char* env = std::getenv("SOFT_BENCH_DIALECT")) {
    dialect = env;
  }
  if (const char* env = std::getenv("SOFT_BENCH_BUDGET")) {
    budget = std::atoi(env);
  }
  if (const char* env = std::getenv("SOFT_BENCH_SHARD_MODE")) {
    mode_name = env;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dialect=", 10) == 0) {
      dialect = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--budget=", 9) == 0) {
      budget = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--mode=", 7) == 0) {
      mode_name = argv[i] + 7;
    }
  }
  if (mode_name != "partition" && mode_name != "split") {
    std::fprintf(stderr, "unknown --mode=%s (want partition or split)\n",
                 mode_name.c_str());
    return 2;
  }
  const soft::ShardMode mode = mode_name == "partition"
                                   ? soft::ShardMode::kPartitionCases
                                   : soft::ShardMode::kSplitBudget;
  return soft::RunScaling(dialect, budget, mode);
}
