// Regenerates Table 6: covered code branches of the DBMSs' built-in SQL
// function modules per tool, under identical statement budgets. Branch
// points are the real decision points of the function implementations
// (src/coverage), so the gaps reflect behaviour, not bookkeeping.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/baselines/comparison.h"
#include "src/dialects/dialects.h"

namespace soft {
namespace {

constexpr int kBudget = 20000;

const std::map<std::string, std::map<std::string, std::string>>& PaperTable6() {
  static const auto* kValues = new std::map<std::string, std::map<std::string, std::string>>{
      {"postgresql",
       {{"SQUIRREL*", "2106"},
        {"SQLancer*", "6106"},
        {"SQLsmith*", "11768"},
        {"SOFT", "13334"}}},
      {"mysql", {{"SQUIRREL*", "1105"}, {"SQLancer*", "1927"}, {"SOFT", "6914"}}},
      {"mariadb", {{"SQUIRREL*", "1758"}, {"SQLancer*", "1732"}, {"SOFT", "6283"}}},
      {"clickhouse", {{"SQLancer*", "26655"}, {"SOFT", "45836"}}},
      {"monetdb", {{"SQLsmith*", "551"}, {"SOFT", "1431"}}},
  };
  return *kValues;
}

void PrintTable6() {
  PrintHeader(
      "Table 6: covered branches of the SQL-function component per tool\n"
      "(identical statement budgets; '-' = DBMS unsupported by the tool;\n"
      "absolute counts are engine branch points, not gcov branches — the\n"
      "SOFT-vs-baseline gap is the reproduced claim)");
  PrintRow({"DBMS", "SQUIRREL*", "SQLancer*", "SQLsmith*", "SOFT"}, {12, 18, 18, 18, 18});

  std::map<std::string, size_t> totals;
  for (const std::string& dialect :
       {"postgresql", "mysql", "mariadb", "clickhouse", "monetdb", "duckdb",
        "virtuoso"}) {
    const std::vector<ToolRun> runs = RunAllTools(dialect, kBudget);
    std::vector<std::string> cells = {dialect};
    for (const char* tool : {"SQUIRREL*", "SQLancer*", "SQLsmith*", "SOFT"}) {
      const ToolRun* run = nullptr;
      for (const ToolRun& r : runs) {
        if (r.tool == tool) {
          run = &r;
        }
      }
      if (!ToolSupportsDialect(tool, dialect) || run == nullptr) {
        cells.push_back("-");
        continue;
      }
      std::string cell = std::to_string(run->result.branches_covered);
      const auto& paper = PaperTable6();
      if (paper.count(dialect) != 0 && paper.at(dialect).count(tool) != 0) {
        cell += " (paper " + paper.at(dialect).at(tool) + ")";
      }
      totals[tool] += run->result.branches_covered;
      cells.push_back(std::move(cell));
    }
    PrintRow(cells, {12, 18, 18, 18, 18});
  }
  PrintRow({"Total", std::to_string(totals["SQUIRREL*"]),
            std::to_string(totals["SQLancer*"]), std::to_string(totals["SQLsmith*"]),
            std::to_string(totals["SOFT"])},
           {12, 18, 18, 18, 18});
}

void BM_BranchAccounting(benchmark::State& state) {
  auto db = MakeDialect("mariadb");
  for (auto _ : state) {
    db->Execute("SELECT SUBSTR('abcdef', -2, 3)");
    benchmark::DoNotOptimize(db->coverage().CoveredBranchCount());
  }
}
BENCHMARK(BM_BranchAccounting);

}  // namespace
}  // namespace soft

int main(int argc, char** argv) {
  soft::PrintTable6();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
