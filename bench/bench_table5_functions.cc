// Regenerates Table 5: built-in SQL functions triggered by each tool's
// generated statements under an identical statement budget (standing in for
// the paper's 24-hour wall clock). Dashes mark tool/DBMS pairs the original
// tools do not support.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/baselines/comparison.h"
#include "src/dialects/dialects.h"

namespace soft {
namespace {

constexpr int kBudget = 20000;

// Paper's Table 5 values for reference printing.
const std::map<std::string, std::map<std::string, std::string>>& PaperTable5() {
  static const auto* kValues = new std::map<std::string, std::map<std::string, std::string>>{
      {"postgresql",
       {{"SQUIRREL*", "29"}, {"SQLancer*", "123"}, {"SQLsmith*", "417"}, {"SOFT", "456"}}},
      {"mysql", {{"SQUIRREL*", "23"}, {"SQLancer*", "35"}, {"SOFT", "323"}}},
      {"mariadb", {{"SQUIRREL*", "22"}, {"SQLancer*", "20"}, {"SOFT", "279"}}},
      {"clickhouse", {{"SQLancer*", "24"}, {"SOFT", "711"}}},
      {"monetdb", {{"SQLsmith*", "29"}, {"SOFT", "171"}}},
  };
  return *kValues;
}

void PrintTable5() {
  PrintHeader(
      "Table 5: number of triggered built-in SQL functions per tool\n"
      "(identical statement budgets; '-' = DBMS unsupported by the tool;\n"
      "absolute values differ from the paper — our engine has ~200 functions\n"
      "per catalog, not thousands — the ordering is the reproduced claim)");
  PrintRow({"DBMS", "SQUIRREL*", "SQLancer*", "SQLsmith*", "SOFT"}, {12, 16, 16, 16, 16});

  std::map<std::string, size_t> totals;
  for (const std::string& dialect :
       {"postgresql", "mysql", "mariadb", "clickhouse", "monetdb", "duckdb",
        "virtuoso"}) {
    const std::vector<ToolRun> runs = RunAllTools(dialect, kBudget);
    std::vector<std::string> cells = {dialect};
    for (const char* tool : {"SQUIRREL*", "SQLancer*", "SQLsmith*", "SOFT"}) {
      const ToolRun* run = nullptr;
      for (const ToolRun& r : runs) {
        if (r.tool == tool) {
          run = &r;
        }
      }
      if (!ToolSupportsDialect(tool, dialect) || run == nullptr) {
        cells.push_back("-");
        continue;
      }
      std::string cell = std::to_string(run->result.functions_triggered);
      const auto& paper = PaperTable5();
      if (paper.count(dialect) != 0 && paper.at(dialect).count(tool) != 0) {
        cell += " (paper " + paper.at(dialect).at(tool) + ")";
      }
      totals[tool] += run->result.functions_triggered;
      cells.push_back(std::move(cell));
    }
    PrintRow(cells, {12, 16, 16, 16, 16});
  }
  PrintRow({"Total", std::to_string(totals["SQUIRREL*"]),
            std::to_string(totals["SQLancer*"]), std::to_string(totals["SQLsmith*"]),
            std::to_string(totals["SOFT"])},
           {12, 16, 16, 16, 16});
}

void BM_SoftTriggerSweep(benchmark::State& state) {
  for (auto _ : state) {
    const std::vector<ToolRun> runs = RunAllTools("monetdb", 2000);
    benchmark::DoNotOptimize(runs.size());
  }
}
BENCHMARK(BM_SoftTriggerSweep)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace soft

int main(int argc, char** argv) {
  soft::PrintTable5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
