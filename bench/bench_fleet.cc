// Fleet campaign service scaling + recovery bench (supporting bench for
// docs/ROBUSTNESS.md): runs one fixed-budget SOFT campaign through the
// lease-based coordinator (src/fleet/) at 1/2/4 worker processes, checks
// every worker count merges to the digest of the `--shards=units` reference
// (the fleet determinism contract), then measures the recovery cost of a
// chaos-killed worker — lease expiry, work stealing, and the re-run unit —
// against the undisturbed 2-worker run. Writes BENCH_fleet.json for
// EXPERIMENTS.md.
//
// Knobs: --budget=N / SOFT_BENCH_BUDGET (default 20000), --dialect=NAME /
// SOFT_BENCH_DIALECT, --units=K / SOFT_BENCH_UNITS (default 8).
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/fleet/coordinator.h"
#include "src/soft/chaos.h"
#include "src/soft/soft_fuzzer.h"
#include "src/telemetry/telemetry.h"

namespace soft {
namespace {

struct FleetPoint {
  std::string label;
  int workers = 0;
  double millis = 0;
  double speedup = 1.0;
  int worker_deaths = 0;
  int leases_stolen = 0;
  bool digest_match = false;
};

int RunFleetBench(const std::string& dialect, int budget, int units) {
  CampaignOptions options;
  options.seed = 1;
  options.max_statements = budget;

  PrintHeader("Fleet campaigns: SOFT on " + dialect + ", budget " +
              std::to_string(budget) + ", " + std::to_string(units) +
              " units, N worker processes");

  const telemetry::WallTimer reference_timer;
  const CampaignResult reference = RunShardedSoftCampaign(dialect, options, units);
  const double reference_millis = reference_timer.ElapsedMs();
  const uint64_t reference_digest = DigestCampaignResult(reference);
  std::printf("reference: --shards=%d in %.0f ms, digest 0x%016llx\n\n", units,
              reference_millis,
              static_cast<unsigned long long>(reference_digest));

  PrintRow({"point", "workers", "wall ms", "speedup", "deaths", "stolen",
            "digest match"},
           {14, 9, 12, 10, 8, 8, 14});

  std::vector<FleetPoint> points;
  bool all_match = true;
  double one_worker_millis = 0;
  int point_index = 0;
  const auto run_point = [&](const std::string& label, int workers,
                             int kill_at_unit) {
    fleet::FleetOptions fopts;
    fopts.socket_path = "/tmp/soft_bench_fleet_" +
                        std::to_string(static_cast<long>(::getpid())) + "_" +
                        std::to_string(point_index++) + ".sock";
    fopts.workers = workers;
    fopts.units = units;
    fopts.lease_deadline_ms = 30000;
    fopts.test_kill_worker_at_unit = kill_at_unit;

    const telemetry::WallTimer timer;
    const Result<fleet::FleetOutcome> outcome =
        fleet::RunFleetCampaign(dialect, options, fopts);
    FleetPoint point;
    point.label = label;
    point.workers = workers;
    point.millis = timer.ElapsedMs();
    if (outcome.ok()) {
      point.worker_deaths = outcome->stats.worker_deaths;
      point.leases_stolen = outcome->stats.leases_stolen;
      point.digest_match =
          DigestCampaignResult(outcome->result) == reference_digest;
    }
    if (workers == 1 && kill_at_unit < 0) {
      one_worker_millis = point.millis;
    }
    point.speedup = point.millis > 0 ? one_worker_millis / point.millis : 0;
    all_match = all_match && point.digest_match;

    char millis_buf[32], speedup_buf[32];
    std::snprintf(millis_buf, sizeof(millis_buf), "%.0f", point.millis);
    std::snprintf(speedup_buf, sizeof(speedup_buf), "%.2fx", point.speedup);
    PrintRow({point.label, std::to_string(point.workers), millis_buf, speedup_buf,
              std::to_string(point.worker_deaths),
              std::to_string(point.leases_stolen),
              point.digest_match ? "yes" : "NO"},
             {14, 9, 12, 10, 8, 8, 14});
    points.push_back(point);
  };

  for (const int workers : {1, 2, 4}) {
    run_point("scale", workers, /*kill_at_unit=*/-1);
  }
  // Recovery: the first worker is SIGKILLed at its first unit; the survivor
  // steals the reclaimed lease. The delta against the clean 2-worker point is
  // the cost of one worker death (respawn backoff + one re-run unit).
  run_point("recovery", 2, /*kill_at_unit=*/0);

  std::printf(
      "(fleet wall time includes fork/exec of worker processes and the wire\n"
      " transfer of unit results; the recovery point pays one re-run unit)\n");

  std::ostringstream json;
  json << "{\n  \"bench\": \"fleet\",\n  \"dialect\": \"" << dialect
       << "\",\n  \"budget\": " << budget << ",\n  \"units\": " << units
       << ",\n  \"seed\": 1,\n  \"reference_millis\": " << reference_millis
       << ",\n  \"points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const FleetPoint& p = points[i];
    json << "    {\"point\": \"" << p.label << "\", \"workers\": " << p.workers
         << ", \"millis\": " << p.millis << ", \"speedup\": " << p.speedup
         << ", \"worker_deaths\": " << p.worker_deaths
         << ", \"leases_stolen\": " << p.leases_stolen
         << ", \"digest_match\": " << (p.digest_match ? "true" : "false") << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  if (!WriteBenchJson("BENCH_fleet.json", json.str())) {
    return 1;
  }

  if (!all_match) {
    std::fprintf(stderr, "FAIL: a fleet run diverged from the sharded reference\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace soft

int main(int argc, char** argv) {
  std::string dialect = "virtuoso";
  int budget = 20000;
  int units = 8;
  if (const char* env = std::getenv("SOFT_BENCH_DIALECT")) {
    dialect = env;
  }
  if (const char* env = std::getenv("SOFT_BENCH_BUDGET")) {
    budget = std::atoi(env);
  }
  if (const char* env = std::getenv("SOFT_BENCH_UNITS")) {
    units = std::atoi(env);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dialect=", 10) == 0) {
      dialect = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--budget=", 9) == 0) {
      budget = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--units=", 8) == 0) {
      units = std::atoi(argv[i] + 8);
    }
  }
  if (budget <= 0 || units <= 0) {
    std::fprintf(stderr, "--budget and --units must be positive\n");
    return 2;
  }
  return soft::RunFleetBench(dialect, budget, units);
}
