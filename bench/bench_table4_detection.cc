// Regenerates Table 4: SOFT's bug-detection campaign over all seven
// dialects, reporting detected bugs grouped by DBMS and function type with
// crash types and the boundary-value-generation pattern that found each —
// alongside the paper's expected counts.
#include <benchmark/benchmark.h>

#include <map>
#include <set>

#include "bench/bench_util.h"
#include "src/dialects/dialects.h"
#include "src/soft/soft_fuzzer.h"

namespace soft {
namespace {

CampaignResult RunSoft(const std::string& dialect, int budget = 250000) {
  auto db = MakeDialect(dialect);
  SoftFuzzer fuzzer;
  CampaignOptions options;
  options.seed = 1;
  options.max_statements = budget;
  options.stop_when_all_bugs_found = true;
  return fuzzer.Run(*db, options);
}

void PrintTable4() {
  PrintHeader(
      "Table 4: bugs SOFT discovered per dialect (measured vs paper).\n"
      "Pattern column = the pattern that actually constructed the crashing\n"
      "input in this run (may differ from the paper's credited pattern when\n"
      "several patterns reach the same boundary).");
  PrintRow({"DBMS", "Function type", "Bug types", "Patterns", "Found"},
           {12, 22, 26, 24, 6});

  int grand_total = 0;
  std::map<std::string, int> by_pattern_family;
  std::map<std::string, int> by_crash;

  for (const std::string& dialect : AllDialectNames()) {
    const CampaignResult result = RunSoft(dialect);
    grand_total += static_cast<int>(result.unique_bugs.size());

    // Group rows by function type, like the paper's table.
    auto db = MakeDialect(dialect);
    std::map<std::string, std::vector<const FoundBug*>> by_type;
    std::map<int, const BugSpec*> spec_by_id;
    for (const BugSpec& spec : db->faults().AllBugs()) {
      spec_by_id[spec.id] = &spec;
    }
    for (const FoundBug& bug : result.unique_bugs) {
      const BugSpec* spec = spec_by_id[bug.crash.bug_id];
      by_type[spec != nullptr ? spec->function_type : "?"].push_back(&bug);
      by_pattern_family[bug.found_by.substr(0, 2)] += 1;
      by_crash[std::string(CrashTypeName(bug.crash.crash))] += 1;
    }
    for (const auto& [type, bugs] : by_type) {
      std::map<std::string, int> crash_counts;
      std::map<std::string, int> pattern_counts;
      for (const FoundBug* bug : bugs) {
        crash_counts[std::string(CrashTypeName(bug->crash.crash))] += 1;
        pattern_counts[bug->found_by] += 1;
      }
      std::string crashes;
      for (const auto& [name, count] : crash_counts) {
        crashes += name + "(" + std::to_string(count) + ") ";
      }
      std::string patterns;
      for (const auto& [name, count] : pattern_counts) {
        patterns += name + "(" + std::to_string(count) + ") ";
      }
      PrintRow({dialect, type + " (" + std::to_string(bugs.size()) + ")", crashes,
                patterns, std::to_string(bugs.size())},
               {12, 22, 26, 24, 6});
    }
    std::printf("%-12s found %zu / %d expected; statements: %d; FPs: %d\n", dialect.c_str(),
                result.unique_bugs.size(), ExpectedBugCount(dialect),
                result.statements_executed, result.false_positives);
  }

  std::printf("\nTotal bugs found: %d (paper: 132)\n", grand_total);
  std::printf("By pattern family (paper: P1.x 56, P2.x 28, P3.x 48):\n");
  for (const auto& [family, count] : by_pattern_family) {
    std::printf("  %s.x: %d\n", family.c_str(), count);
  }
  std::printf("By crash type (paper's table rows sum: NPD 61, SEGV 29, HBOF 13,\n"
              "GBOF 4, UAF 3, SO 6, DBZ 2, AF 14):\n");
  for (const auto& [crash, count] : by_crash) {
    std::printf("  %s: %d\n", crash.c_str(), count);
  }
}

void BM_SoftCampaignMonetdb(benchmark::State& state) {
  for (auto _ : state) {
    const CampaignResult result = RunSoft("monetdb", 5000);
    benchmark::DoNotOptimize(result.unique_bugs.size());
  }
}
BENCHMARK(BM_SoftCampaignMonetdb)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace soft

int main(int argc, char** argv) {
  soft::PrintTable4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
